package suite

import (
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// The differential gate behind the registry: a registry-driven run
// must be byte-identical to the hard-coded experiment it re-expresses
// — same RunSpec derivation, same RunRepeated seeds, same cells — at
// any -parallel value.

func defaultBase() workload.Params { return workload.Params{Seed: 1, Scale: 1.0} }

func testMachine(t *testing.T) *bench.Machine {
	t.Helper()
	mach, err := bench.NewMachine(bench.MachineOptions{MemBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return mach
}

// stripSpec zeroes the non-comparable Workload.Build closure so cells
// can be DeepEqual'd (two builds of the same workload produce
// distinct func values).
func stripSpec(c bench.Cell) bench.Cell {
	c.Spec.Workload.Build = nil
	return c
}

var diffParams = workload.Params{Seed: 1, Scale: 0.05}

func TestRegistryMatchesFig10(t *testing.T) {
	mach := testMachine(t)
	reg := Default()
	s, err := reg.ByName("fig10")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	want, err := bench.RunFig10(mach, cfg, diffParams, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := Run(mach, s, diffParams, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cells) != len(want.Policies) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(got.Cells), len(want.Policies))
		}
		for i, p := range want.Policies {
			cell, ok := got.Find("synthetic", cfg.Name, p)
			if !ok {
				t.Fatalf("workers=%d: missing cell for %s", workers, p)
			}
			if !reflect.DeepEqual(stripSpec(cell.Cell), stripSpec(want.Cells[i])) {
				t.Errorf("workers=%d: policy %s diverged from RunFig10:\n got %+v\nwant %+v",
					workers, p, stripSpec(cell.Cell), stripSpec(want.Cells[i]))
			}
		}
	}
}

func TestRegistryMatchesSuiteMatrix(t *testing.T) {
	mach := testMachine(t)
	// A trimmed copy of the "paper" grid: two workloads, two configs,
	// full seven-policy set, so the "other best" fold is exercised.
	s := Suite{
		Name:     "paper-mini",
		Configs:  []string{"4_threads_1_nodes", "4_threads_4_nodes"},
		Policies: []string{"buddy", "BPM", "MEM+LLC", "MEM", "LLC", "MEM+LLC(part)", "LLC+MEM(part)"},
		Workloads: []WorkloadSpec{
			{Driver: "lbm"},
			{Driver: "bodytrack"},
		},
	}
	loads := []workload.Workload{workload.LBM(), workload.Bodytrack()}
	var cfgs []bench.Config
	for _, n := range s.Configs {
		c, err := bench.ConfigByName(mach.Topo, n)
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, c)
	}
	want, err := bench.RunSuiteParallel(mach, loads, cfgs, diffParams, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := Run(mach, s, diffParams, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Ops != want.Ops {
			t.Errorf("workers=%d: total ops %d, want %d", workers, got.Ops, want.Ops)
		}
		for _, row := range want.Rows {
			check := func(pol policy.Policy, wc bench.Cell) {
				gc, ok := got.Find(row.Workload, row.Config, pol)
				if !ok {
					t.Fatalf("workers=%d: missing cell %s/%s/%s", workers, row.Workload, row.Config, pol)
				}
				if !reflect.DeepEqual(stripSpec(gc.Cell), stripSpec(wc)) {
					t.Errorf("workers=%d: cell %s/%s/%s diverged from RunSuiteParallel",
						workers, row.Workload, row.Config, pol)
				}
			}
			check(policy.Buddy, row.Buddy)
			check(policy.BPM, row.BPM)
			check(policy.MEMLLC, row.MEMLLC)
			check(row.OtherPolicy, row.Other)

			// The "other best" winner is recomputable from registry
			// cells with the same fold.
			bestPol, best := policy.Policy(0), bench.Cell{}
			for i, p := range bench.BestOtherPolicies() {
				gc, ok := got.Find(row.Workload, row.Config, p)
				if !ok {
					t.Fatalf("missing other-best candidate %s", p)
				}
				if i == 0 || gc.Cell.Runtime.Mean < best.Runtime.Mean {
					bestPol, best = p, gc.Cell
				}
			}
			if bestPol != row.OtherPolicy {
				t.Errorf("workers=%d: other-best fold picked %s, hard-coded picked %s",
					workers, bestPol, row.OtherPolicy)
			}
			_ = best
		}
	}
}

func TestRegistryMatchesPerThread(t *testing.T) {
	mach := testMachine(t)
	reg := Default()
	s, err := reg.ByName("perthread-lbm")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	pols := []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC}
	want, err := bench.RunPerThread(mach, workload.LBM(), cfg, pols, diffParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	// perthread-lbm pins repeats = 1, where RunRepeated(spec, 1).Last
	// equals Run(spec): the registry cells carry the per-thread
	// vectors the hard-coded experiment reports.
	for _, workers := range []int{1, 4} {
		got, err := Run(mach, s, diffParams, 99 /* overridden by entry */, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Repeats != 1 {
			t.Fatalf("entry repeats override lost: %d", got.Repeats)
		}
		for i, p := range pols {
			cell, ok := got.Find("lbm", cfg.Name, p)
			if !ok {
				t.Fatalf("missing cell for %s", p)
			}
			if !reflect.DeepEqual(cell.Cell.Last.ThreadRuntime, want.Runtime[i]) {
				t.Errorf("workers=%d: %s per-thread runtime diverged:\n got %v\nwant %v",
					workers, p, cell.Cell.Last.ThreadRuntime, want.Runtime[i])
			}
			if !reflect.DeepEqual(cell.Cell.Last.ThreadIdle, want.Idle[i]) {
				t.Errorf("workers=%d: %s per-thread idle diverged", workers, p)
			}
		}
	}
}

// The suite runner itself must be worker-count-neutral even for
// registry entries with no hard-coded counterpart (driver instances
// with custom knobs).
func TestSuiteRunParallelNeutral(t *testing.T) {
	mach := testMachine(t)
	s := Suite{
		Name:     "knobbed",
		Configs:  []string{"4_threads_1_nodes"},
		Policies: []string{"buddy", "MEM+LLC"},
		Workloads: []WorkloadSpec{
			{Name: "g", Driver: "garbage", Ops: 3000},
			{Name: "j", Driver: "json", Ops: 6, Depth: 4},
		},
	}
	seq, err := Run(mach, s, diffParams, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(mach, s, diffParams, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(seq.Cells))
	}
	for i := range seq.Cells {
		a, b := seq.Cells[i], par.Cells[i]
		a.Cell, b.Cell = stripSpec(a.Cell), stripSpec(b.Cell)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("cell %d diverged between workers=1 and workers=8", i)
		}
	}
}
