package suite

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/stats"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// CellResult is one (workload, config, policy) cell of a suite run.
type CellResult struct {
	Workload string
	Config   string
	Policy   policy.Policy
	Cell     bench.Cell
}

// Result holds a full suite run in canonical cell order:
// configuration-major, then workload, then policy (the same
// config-then-workload nesting as the hard-coded suite matrix).
type Result struct {
	Suite   string
	Repeats int
	Params  workload.Params
	Cells   []CellResult
	// Ops totals engine ops across every cell (perf accounting).
	Ops uint64
}

// Effective applies the suite's run-parameter overrides over the
// runner's defaults: entry values of zero defer to base/repeats.
func (s Suite) Effective(base workload.Params, repeats int) (workload.Params, int) {
	if s.Scale > 0 {
		base.Scale = s.Scale
	}
	if s.Seed != 0 {
		base.Seed = s.Seed
	}
	if s.Repeats > 0 {
		repeats = s.Repeats
	}
	return base, repeats
}

// Run executes every cell of the suite's workload × config × policy
// matrix, up to `workers` cells concurrently through the bench
// scatter/gather runner — results are byte-identical at any worker
// count. base and repeats are the runner defaults the suite entry may
// override (Effective).
func Run(mach *bench.Machine, s Suite, base workload.Params, repeats, workers int) (*Result, error) {
	params, reps := s.Effective(base, repeats)

	loads := make([]workload.Workload, len(s.Workloads))
	for i, w := range s.Workloads {
		wl, err := w.Resolve()
		if err != nil {
			return nil, fieldErr(s.Name, "workload", "%q: %v", w.InstanceName(), err)
		}
		loads[i] = wl
	}
	type cellJob struct {
		wl  workload.Workload
		cfg bench.Config
		pol policy.Policy
	}
	var jobs []cellJob
	for _, cname := range s.Configs {
		cfg, err := bench.ConfigByName(mach.Topo, cname)
		if err != nil {
			return nil, fieldErr(s.Name, "configs", "%v", err)
		}
		for _, wl := range loads {
			for _, pname := range s.Policies {
				pol, err := policy.ParsePolicy(pname)
				if err != nil {
					return nil, fieldErr(s.Name, "policies", "%v", err)
				}
				jobs = append(jobs, cellJob{wl: wl, cfg: cfg, pol: pol})
			}
		}
	}

	cells, err := bench.Gather(len(jobs), workers, func(i int) (bench.Cell, error) {
		j := jobs[i]
		c, err := bench.RunRepeated(mach, bench.RunSpec{
			Workload: j.wl, Config: j.cfg, Policy: j.pol, Params: params}, reps)
		if err != nil {
			return c, fmt.Errorf("suite: %s: cell %s/%s/%s: %w",
				s.Name, j.wl.Name, j.cfg.Name, j.pol, err)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	out := &Result{Suite: s.Name, Repeats: reps, Params: params}
	for i, j := range jobs {
		out.Cells = append(out.Cells, CellResult{
			Workload: j.wl.Name, Config: j.cfg.Name, Policy: j.pol, Cell: cells[i]})
		out.Ops += cells[i].Ops
	}
	return out, nil
}

// Find returns the cell for a (workload, config, policy) triple.
func (r *Result) Find(wl, cfg string, pol policy.Policy) (CellResult, bool) {
	for _, c := range r.Cells {
		if c.Workload == wl && c.Config == cfg && c.Policy == pol {
			return c, true
		}
	}
	return CellResult{}, false
}

// WriteTable prints the suite matrix with per-cell runtime and idle
// summaries, normalizing each (workload, config) group to its first
// policy's mean runtime.
func (r *Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Suite %s — %d repeats, scale %g, seed %d\n",
		r.Suite, r.Repeats, r.Params.Scale, r.Params.Seed)
	fmt.Fprintf(w, "%-20s %-14s %-14s %13s %13s %13s %8s\n",
		"config", "workload", "policy", "runtime mean", "min", "max", "vs first")
	base := map[string]float64{}
	for _, c := range r.Cells {
		key := c.Config + "\x00" + c.Workload
		if _, ok := base[key]; !ok {
			base[key] = c.Cell.Runtime.Mean
		}
		fmt.Fprintf(w, "%-20s %-14s %-14s %13.0f %13.0f %13.0f %8.3f\n",
			c.Config, c.Workload, c.Policy.String(),
			c.Cell.Runtime.Mean, c.Cell.Runtime.Min, c.Cell.Runtime.Max,
			stats.NormRatio(c.Cell.Runtime.Mean, base[key]))
	}
}

// WriteJSON emits the run as a plain view (the Cell's Workload build
// function cannot marshal), mirroring the bench package's JSON
// exports: fixed field order, map-free, byte-stable across runs and
// worker counts.
func (r *Result) WriteJSON(w io.Writer) error {
	type summaryJSON struct {
		N      int     `json:"n"`
		Mean   float64 `json:"mean_cycles"`
		Min    float64 `json:"min_cycles"`
		Max    float64 `json:"max_cycles"`
		StdDev float64 `json:"stddev_cycles"`
	}
	sum := func(s stats.Summary) summaryJSON {
		return summaryJSON{N: s.N, Mean: s.Mean, Min: s.Min, Max: s.Max, StdDev: s.StdDev}
	}
	type cellJSON struct {
		Workload string      `json:"workload"`
		Config   string      `json:"config"`
		Policy   string      `json:"policy"`
		Runtime  summaryJSON `json:"runtime"`
		Idle     summaryJSON `json:"idle"`
		Ops      uint64      `json:"engine_ops"`
	}
	view := struct {
		Suite   string     `json:"suite"`
		Repeats int        `json:"repeats"`
		Scale   float64    `json:"scale"`
		Seed    int64      `json:"seed"`
		Cells   []cellJSON `json:"cells"`
		Ops     uint64     `json:"engine_ops"`
	}{Suite: r.Suite, Repeats: r.Repeats, Scale: r.Params.Scale, Seed: r.Params.Seed, Ops: r.Ops}
	for _, c := range r.Cells {
		view.Cells = append(view.Cells, cellJSON{
			Workload: c.Workload, Config: c.Config, Policy: c.Policy.String(),
			Runtime: sum(c.Cell.Runtime), Idle: sum(c.Cell.Idle), Ops: c.Cell.Ops,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(view)
}

// WriteCSV emits one row per cell.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"suite", "config", "workload", "policy",
		"runtime_mean", "runtime_min", "runtime_max",
		"idle_mean", "idle_min", "idle_max", "ops"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		if err := cw.Write([]string{r.Suite, c.Config, c.Workload, c.Policy.String(),
			f(c.Cell.Runtime.Mean), f(c.Cell.Runtime.Min), f(c.Cell.Runtime.Max),
			f(c.Cell.Idle.Mean), f(c.Cell.Idle.Min), f(c.Cell.Idle.Max),
			strconv.FormatUint(c.Cell.Ops, 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
