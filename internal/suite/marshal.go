package suite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// MarshalTOML renders the registry in the TOML subset parseTOML
// accepts. Zero-valued fields are omitted, so load → marshal → load
// is DeepEqual-stable (the fuzz target's round-trip property).
func (r *Registry) MarshalTOML() []byte {
	var b bytes.Buffer
	for i := range r.Suites {
		if i > 0 {
			b.WriteByte('\n')
		}
		r.Suites[i].marshalTOML(&b)
	}
	return b.Bytes()
}

func (s *Suite) marshalTOML(b *bytes.Buffer) {
	// Suite-level keys must precede the first [[suite.workload]]
	// header: after the header every key belongs to that workload.
	b.WriteString("[[suite]]\n")
	tomlStr(b, "name", s.Name)
	tomlStr(b, "description", s.Description)
	tomlStrs(b, "configs", s.Configs)
	tomlStrs(b, "policies", s.Policies)
	tomlInt(b, "repeats", int64(s.Repeats))
	if s.Scale != 0 {
		fmt.Fprintf(b, "scale = %s\n", strconv.FormatFloat(s.Scale, 'g', -1, 64))
	}
	tomlInt(b, "seed", s.Seed)
	for i := range s.Workloads {
		w := &s.Workloads[i]
		b.WriteString("\n[[suite.workload]]\n")
		tomlStr(b, "name", w.Name)
		tomlStr(b, "driver", w.Driver)
		tomlUint(b, "footprint", w.Footprint)
		tomlUint(b, "block", w.Block)
		tomlUint(b, "ops", w.Ops)
		tomlInt(b, "ticks", int64(w.Ticks))
		tomlInt(b, "depth", int64(w.Depth))
		tomlInt(b, "read_pct", int64(w.ReadPct))
	}
}

func tomlStr(b *bytes.Buffer, key, v string) {
	if v != "" {
		fmt.Fprintf(b, "%s = %s\n", key, strconv.Quote(v))
	}
}

func tomlStrs(b *bytes.Buffer, key string, vs []string) {
	if len(vs) == 0 {
		return
	}
	fmt.Fprintf(b, "%s = [", key)
	for i, v := range vs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Quote(v))
	}
	b.WriteString("]\n")
}

func tomlInt(b *bytes.Buffer, key string, v int64) {
	if v != 0 {
		fmt.Fprintf(b, "%s = %d\n", key, v)
	}
}

func tomlUint(b *bytes.Buffer, key string, v uint64) {
	if v != 0 {
		fmt.Fprintf(b, "%s = %d\n", key, v)
	}
}

// MarshalJSON renders the registry as indented JSON (the alternate
// on-disk format Parse accepts).
func (r *Registry) MarshalJSON() ([]byte, error) {
	// Alias dodges the method's own name during encoding.
	type alias Registry
	return json.MarshalIndent((*alias)(r), "", "  ")
}
