package suite

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzSuiteRegistry drives arbitrary bytes through the loader:
//
//  1. Parse never panics.
//  2. Every error wears the package prefix — positional
//     ("suite: line N:") or addressed ("suite: <name>: <field>:") —
//     so a malformed config always fails loudly and addressably.
//  3. Anything that loads round-trips: load -> marshal -> load is
//     DeepEqual for both the TOML and JSON forms.
func FuzzSuiteRegistry(f *testing.F) {
	f.Add([]byte(sampleTOML))
	f.Add(defaultTOML)
	f.Add([]byte(`{"suites":[{"name":"j","workloads":[{"driver":"lbm"}],"configs":["4_threads_1_nodes"],"policies":["buddy"]}]}`))
	f.Add([]byte("[[suite]]\nname = \"x\"\n"))
	f.Add([]byte("[[suite]]\nscale = 1e308\nseed = -1\n"))
	f.Add([]byte("key = \"value\"\n[[suite.workload]]\n"))
	f.Add([]byte("[[suite]]\nname = \"a#b\" # comment\npolicies = [\"buddy\",]\n"))
	f.Add([]byte("{\"suites\": null}"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := Parse(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "suite: ") {
				t.Fatalf("error without package prefix: %q", err)
			}
			return
		}
		again, err := Parse(reg.MarshalTOML())
		if err != nil {
			t.Fatalf("TOML round-trip re-parse failed: %v\noriginal input: %q\nmarshalled: %q",
				err, data, reg.MarshalTOML())
		}
		if !reflect.DeepEqual(reg, again) {
			t.Fatalf("TOML round-trip diverged for input %q", data)
		}
		js, err := reg.MarshalJSON()
		if err != nil {
			t.Fatalf("MarshalJSON failed on a valid registry: %v", err)
		}
		again, err = Parse(js)
		if err != nil {
			t.Fatalf("JSON round-trip re-parse failed: %v\njson: %s", err, js)
		}
		if !reflect.DeepEqual(reg, again) {
			t.Fatalf("JSON round-trip diverged for input %q", data)
		}
	})
}
