package bench

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/serve"
)

// Small serve cells, inline and offloaded, so CI exercises both
// serving paths end to end (churn, drain, cross-shard audit). The
// deterministic Ops count must agree between the two: the workload is
// identical, only where the allocator runs differs.

func TestServeCellInlineAndOffload(t *testing.T) {
	spec := ServeSpec{Name: "test_2_nodes_4_clients", Nodes: 2, Clients: 4, Ops: 400}
	const memBytes = 64 << 20

	inline, err := RunServeCell(spec, memBytes, serve.Config{})
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	off, err := RunOffloadServeCell(spec, memBytes, serve.Config{}, serve.OffloadConfig{})
	if err != nil {
		t.Fatalf("offload: %v", err)
	}
	if inline.Ops != off.Ops {
		t.Errorf("ops diverge: inline %d, offloaded %d", inline.Ops, off.Ops)
	}
	// 4 clients x 400 ops plus the final drain; short of exhaustion
	// the churn always completes its budget.
	if inline.Ops < 4*400 {
		t.Errorf("inline ops = %d, want >= %d", inline.Ops, 4*400)
	}
	if off.Stats.Allocs != off.Stats.Frees {
		t.Errorf("offload leak: %d allocs vs %d frees", off.Stats.Allocs, off.Stats.Frees)
	}
}
