package bench

import (
	"encoding/csv"
	"io"
	"strconv"

	"github.com/tintmalloc/tintmalloc/internal/clock"
)

// Machine-readable exports of every experiment, for plotting the
// figures outside Go. One row per measurement; all cycle counts are
// simulated cycles.

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func fmtD(v clock.Dur) string {
	return strconv.FormatUint(uint64(v), 10)
}

// WriteCSV exports the latency primer.
func (r *LatencyResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "hops", "cycles_per_line"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(row.Node), strconv.Itoa(row.Hops), fmtF(row.Cycles),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the Fig. 10 sweep.
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "policy", "runtime_mean", "runtime_min", "runtime_max", "runtime_stddev"}); err != nil {
		return err
	}
	for i, p := range r.Policies {
		c := r.Cells[i]
		if err := cw.Write([]string{
			r.Config.Name, p.String(),
			fmtF(c.Runtime.Mean), fmtF(c.Runtime.Min), fmtF(c.Runtime.Max), fmtF(c.Runtime.StdDev),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the suite matrix behind Figs. 11 and 12: one row
// per (config, workload, policy bar) with absolute and normalized
// runtime and idle.
func (s *SuiteResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"config", "workload", "policy",
		"runtime_mean", "runtime_norm", "idle_mean", "idle_norm",
		"remote_frac", "l3_miss_rate", "row_conflict_frac",
	}); err != nil {
		return err
	}
	for i := range s.Rows {
		r := &s.Rows[i]
		bars := []struct {
			name string
			cell Cell
		}{
			{"buddy", r.Buddy},
			{"BPM", r.BPM},
			{"MEM+LLC", r.MEMLLC},
			{r.OtherPolicy.String(), r.Other},
		}
		for _, b := range bars {
			if err := cw.Write([]string{
				r.Config, r.Workload, b.name,
				fmtF(b.cell.Runtime.Mean), fmtF(s.normOf(r, b.cell, true)),
				fmtF(b.cell.Idle.Mean), fmtF(s.normOf(r, b.cell, false)),
				fmtF(b.cell.Last.RemoteDRAMFrac),
				fmtF(b.cell.Last.L3MissRate),
				fmtF(b.cell.Last.RowConflictFrac),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func (s *SuiteResult) normOf(r *SuiteRow, c Cell, runtime bool) float64 {
	if runtime {
		return r.NormRuntime(c)
	}
	return r.NormIdle(c)
}

// WriteCSV exports the per-thread vectors behind Figs. 13 and 14.
func (r *PerThreadResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "config", "policy", "thread", "runtime", "idle"}); err != nil {
		return err
	}
	for i, p := range r.Policies {
		for t := 0; t < r.Config.Threads(); t++ {
			if err := cw.Write([]string{
				r.Workload, r.Config.Name, p.String(), strconv.Itoa(t),
				fmtD(r.Runtime[i][t]), fmtD(r.Idle[i][t]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the per-policy detail table.
func (d *DetailResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "config", "policy",
		"runtime_mean", "idle_mean", "remote_frac", "l3_miss_rate", "row_conflict_frac",
	}); err != nil {
		return err
	}
	for _, row := range d.Rows {
		if err := cw.Write([]string{
			d.Workload, d.Config.Name, row.Policy.String(),
			fmtF(row.Cell.Runtime.Mean), fmtF(row.Cell.Idle.Mean),
			fmtF(row.Cell.Last.RemoteDRAMFrac),
			fmtF(row.Cell.Last.L3MissRate),
			fmtF(row.Cell.Last.RowConflictFrac),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the chaos matrix: one row per (workload, plan)
// with degradation and memory-system columns.
func (c *ChaosResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "plan", "config", "policy", "oom",
		"runtime", "vs_clean",
		"degraded_borrow", "degraded_local_uncolored", "degraded_remote", "degraded_rate",
		"loans_outstanding", "loans_reclaimed", "parked_reclaimed",
		"injected", "squeeze_denials", "audits",
		"remote_frac", "l3_miss_rate", "row_conflict_frac",
	}); err != nil {
		return err
	}
	for i := range c.Rows {
		r := &c.Rows[i]
		if err := cw.Write([]string{
			r.Workload, r.Plan, c.Config.Name, c.Policy, strconv.FormatBool(r.OOM),
			fmtD(r.Metrics.Runtime), fmtF(c.VsClean(r)),
			strconv.FormatUint(r.Kern.DegradedAllocs[0], 10),
			strconv.FormatUint(r.Kern.DegradedAllocs[1], 10),
			strconv.FormatUint(r.Kern.DegradedAllocs[2], 10),
			fmtF(r.DegradedRate()),
			strconv.Itoa(r.Loans),
			strconv.FormatUint(r.Kern.LoansReclaimed, 10),
			strconv.FormatUint(r.Kern.ParkedReclaimed, 10),
			strconv.FormatUint(r.Inj.TotalInjected(), 10),
			strconv.FormatUint(r.Inj.SqueezeDenials, 10),
			strconv.Itoa(r.Audits),
			fmtF(r.Metrics.RemoteDRAMFrac), fmtF(r.Metrics.L3MissRate), fmtF(r.Metrics.RowConflictFrac),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the adaptive matrix: one row per (policy, plan)
// cell with degradation, switch and compaction columns.
func (a *AdaptiveResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "config", "policy", "plan", "oom",
		"runtime", "degraded_total", "loans_outstanding",
		"switches", "repolicies",
		"loans_moved", "loans_failed", "pages_moved", "pages_failed", "compact_cost",
		"remote_frac", "l3_miss_rate", "audits",
	}); err != nil {
		return err
	}
	for i := range a.Rows {
		r := &a.Rows[i]
		if err := cw.Write([]string{
			a.Workload, a.Config.Name, r.Policy, r.Plan, strconv.FormatBool(r.OOM),
			fmtD(r.Metrics.Runtime),
			strconv.FormatUint(r.DegradedTotal(), 10),
			strconv.Itoa(r.Loans),
			strconv.Itoa(len(r.Switches)),
			strconv.FormatUint(r.Repolicies, 10),
			strconv.Itoa(r.Compact.LoansMoved), strconv.Itoa(r.Compact.LoansFailed),
			strconv.Itoa(r.Compact.PagesMoved), strconv.Itoa(r.Compact.PagesFailed),
			fmtD(r.CompactCost),
			fmtF(r.Metrics.RemoteDRAMFrac), fmtF(r.Metrics.L3MissRate),
			strconv.Itoa(r.Audits),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
