package bench

import (
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/clock"

	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// shapeScale runs the suite fast while keeping working sets large
// enough that the cache/DRAM contention effects the assertions check
// still operate.
const shapeScale = 0.4

func testMachine(t *testing.T) *Machine {
	t.Helper()
	mach, err := NewMachine(MachineOptions{MemBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return mach
}

func cfg16(t *testing.T, m *Machine) Config {
	t.Helper()
	c, err := ConfigByName(m.Topo, "16_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigurations(t *testing.T) {
	topo := topology.Opteron6128()
	cfgs := Configurations(topo)
	if len(cfgs) != 5 {
		t.Fatalf("got %d configurations, want 5", len(cfgs))
	}
	wantThreads := map[string]int{
		"16_threads_4_nodes": 16,
		"8_threads_4_nodes":  8,
		"8_threads_2_nodes":  8,
		"4_threads_4_nodes":  4,
		"4_threads_1_nodes":  4,
	}
	for _, c := range cfgs {
		if got := c.Threads(); got != wantThreads[c.Name] {
			t.Errorf("%s has %d threads", c.Name, got)
		}
		for _, core := range c.Cores {
			if !topo.ValidCore(core) {
				t.Errorf("%s pins invalid core %d", c.Name, core)
			}
		}
	}
	// Node coverage checks straight from the paper's definitions.
	nodes := func(c Config) map[topology.NodeID]bool {
		out := map[topology.NodeID]bool{}
		for _, core := range c.Cores {
			out[topo.NodeOfCore(core)] = true
		}
		return out
	}
	for _, tc := range []struct {
		name  string
		nodes int
	}{
		{"16_threads_4_nodes", 4},
		{"8_threads_4_nodes", 4},
		{"8_threads_2_nodes", 2},
		{"4_threads_4_nodes", 4},
		{"4_threads_1_nodes", 1},
	} {
		c, err := ConfigByName(topo, tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(nodes(c)); got != tc.nodes {
			t.Errorf("%s spans %d nodes, want %d", tc.name, got, tc.nodes)
		}
	}
	if _, err := ConfigByName(topo, "bogus"); err == nil {
		t.Error("ConfigByName accepted junk")
	}
}

func TestMachineBootsThroughPCI(t *testing.T) {
	mach := testMachine(t)
	if mach.Mapping.NumBankColors() != 128 || mach.Mapping.NumLLCColors() != 32 {
		t.Errorf("mapping colors = %d/%d", mach.Mapping.NumBankColors(), mach.Mapping.NumLLCColors())
	}
	over, err := NewMachine(MachineOptions{MemBytes: 1 << 30, Overlapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if over.Mapping.NumBankColors() != 128 {
		t.Errorf("overlapped colors = %d", over.Mapping.NumBankColors())
	}
}

func TestLatencyIncreasesWithHops(t *testing.T) {
	mach := testMachine(t)
	r, err := RunLatency(mach, 0, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("latency rows = %d", len(r.Rows))
	}
	// Paper claim (1): local controller latency is much lower than
	// remote. Latency must be non-decreasing in hop distance.
	for i := 1; i < len(r.Rows); i++ {
		a, b := r.Rows[i-1], r.Rows[i]
		if b.Hops >= a.Hops && b.Cycles < a.Cycles {
			t.Errorf("node %d (%d hops) faster than node %d (%d hops): %.1f < %.1f",
				b.Node, b.Hops, a.Node, a.Hops, b.Cycles, a.Cycles)
		}
	}
	if r.Rows[3].Cycles < r.Rows[0].Cycles*1.3 {
		t.Errorf("3-hop latency %.1f not clearly above local %.1f",
			r.Rows[3].Cycles, r.Rows[0].Cycles)
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	if !strings.Contains(sb.String(), "hops") {
		t.Error("WriteTable produced no header")
	}
}

// TestPaperShapeFig10 asserts the synthetic benchmark ordering of
// Fig. 10: every coloring beats buddy, and MEM+LLC is fastest.
func TestPaperShapeFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	mach := testMachine(t)
	r, err := RunFig10(mach, cfg16(t, mach), workload.Params{Seed: 1, Scale: shapeScale}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	get := func(p policy.Policy) float64 {
		for i, q := range r.Policies {
			if q == p {
				return r.Cells[i].Runtime.Mean
			}
		}
		t.Fatalf("policy %v missing", p)
		return 0
	}
	buddy := get(policy.Buddy)
	memllc := get(policy.MEMLLC)
	if !(memllc < buddy) {
		t.Errorf("MEM+LLC (%.0f) not faster than buddy (%.0f)", memllc, buddy)
	}
	if !(get(policy.LLCOnly) < buddy) {
		t.Errorf("LLC coloring did not beat buddy")
	}
	if !(get(policy.MEMOnly) < buddy) {
		t.Errorf("MEM coloring did not beat buddy")
	}
	if !(memllc <= get(policy.LLCOnly) && memllc <= get(policy.MEMOnly)) {
		t.Errorf("MEM+LLC not the fastest policy")
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	if !strings.Contains(sb.String(), "MEM+LLC") {
		t.Error("WriteTable missing MEM+LLC row")
	}
}

// TestPaperShapeLBM asserts the paper's headline cell (lbm at
// 16 threads / 4 nodes): MEM+LLC < buddy < BPM for runtime, idle
// reduced, per-thread balance improved.
func TestPaperShapeLBM(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	mach := testMachine(t)
	cfg := cfg16(t, mach)
	params := workload.Params{Seed: 1, Scale: shapeScale}

	run := func(p policy.Policy) RunMetrics {
		m, err := Run(mach, RunSpec{Workload: workload.LBM(), Config: cfg, Policy: p, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	buddy := run(policy.Buddy)
	memllc := run(policy.MEMLLC)
	bpm := run(policy.BPM)

	if !(memllc.Runtime < buddy.Runtime) {
		t.Errorf("MEM+LLC runtime %d not below buddy %d", memllc.Runtime, buddy.Runtime)
	}
	if !(buddy.Runtime < bpm.Runtime) {
		t.Errorf("BPM runtime %d not above buddy %d (controller-oblivious penalty missing)",
			bpm.Runtime, buddy.Runtime)
	}
	if !(memllc.TotalIdle < buddy.TotalIdle) {
		t.Errorf("MEM+LLC idle %d not below buddy %d", memllc.TotalIdle, buddy.TotalIdle)
	}
	// Balance: buddy's max-min thread-runtime spread exceeds MEM+LLC's.
	if !(Spread(buddy.ThreadRuntime) > Spread(memllc.ThreadRuntime)) {
		t.Errorf("buddy spread %d not above MEM+LLC spread %d",
			Spread(buddy.ThreadRuntime), Spread(memllc.ThreadRuntime))
	}
	// Mechanism evidence: coloring removes remote DRAM accesses.
	if memllc.RemoteDRAMFrac != 0 {
		t.Errorf("MEM+LLC remote fraction = %.3f, want 0", memllc.RemoteDRAMFrac)
	}
	if bpm.RemoteDRAMFrac < 0.5 {
		t.Errorf("BPM remote fraction = %.3f, want most accesses remote", bpm.RemoteDRAMFrac)
	}
}

// TestGainGrowsWithParallelism asserts the paper's observation that
// 16_threads_4_nodes sees a larger MEM+LLC gain than 4_threads_1_nodes.
func TestGainGrowsWithParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	mach := testMachine(t)
	params := workload.Params{Seed: 1, Scale: shapeScale}
	ratio := func(cfgName string) float64 {
		cfg, err := ConfigByName(mach.Topo, cfgName)
		if err != nil {
			t.Fatal(err)
		}
		buddy, err := Run(mach, RunSpec{Workload: workload.LBM(), Config: cfg, Policy: policy.Buddy, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		colored, err := Run(mach, RunSpec{Workload: workload.LBM(), Config: cfg, Policy: policy.MEMLLC, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		return float64(colored.Runtime) / float64(buddy.Runtime)
	}
	big := ratio("16_threads_4_nodes")
	small := ratio("4_threads_1_nodes")
	if !(big < small) {
		t.Errorf("MEM+LLC gain at 16t4n (ratio %.3f) not larger than at 4t1n (%.3f)", big, small)
	}
}

func TestRunRepeatedSummaries(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunRepeated(mach, RunSpec{
		Workload: workload.Synthetic(), Config: cfg,
		Policy: policy.MEMLLC, Params: workload.Params{Seed: 1, Scale: 0.1},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Runtime.N != 3 {
		t.Errorf("summary N = %d, want 3", cell.Runtime.N)
	}
	if cell.Runtime.Min > cell.Runtime.Mean || cell.Runtime.Mean > cell.Runtime.Max {
		t.Errorf("summary ordering broken: %+v", cell.Runtime)
	}
	// Churn-seed variation must actually produce spread.
	if cell.Runtime.Spread() == 0 {
		t.Error("repeats produced identical runtimes; error bars are fake")
	}
	if len(cell.Last.ThreadRuntime) != 4 {
		t.Errorf("per-thread vector = %d entries", len(cell.Last.ThreadRuntime))
	}
}

func TestSuiteRowLookupAndTables(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSuite(mach, []workload.Workload{workload.Synthetic()},
		[]Config{cfg}, workload.Params{Seed: 1, Scale: 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	row, ok := res.Row("synthetic", "4_threads_4_nodes")
	if !ok {
		t.Fatal("Row lookup failed")
	}
	if row.NormRuntime(row.Buddy) != 1.0 {
		t.Errorf("buddy normalizes to %.3f, want 1", row.NormRuntime(row.Buddy))
	}
	if _, ok := res.Row("nope", "x"); ok {
		t.Error("Row found nonexistent cell")
	}
	var sb strings.Builder
	res.WriteRuntimeTable(&sb)
	res.WriteIdleTable(&sb)
	out := sb.String()
	if !strings.Contains(out, "synthetic") || !strings.Contains(out, "Fig. 12") {
		t.Error("tables incomplete")
	}
}

func TestPerThreadResultShape(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunPerThread(mach, workload.Synthetic(), cfg,
		[]policy.Policy{policy.Buddy, policy.MEMLLC},
		workload.Params{Seed: 1, Scale: 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runtime) != 2 || len(r.Runtime[0]) != 4 {
		t.Fatalf("per-thread matrix shape wrong: %dx%d", len(r.Runtime), len(r.Runtime[0]))
	}
	var sb strings.Builder
	r.WriteTables(&sb)
	if !strings.Contains(sb.String(), "Fig. 14") {
		t.Error("WriteTables missing Fig. 14")
	}
}

func TestSpreadAndMaxOf(t *testing.T) {
	if Spread(nil) != 0 || MaxOf(nil) != 0 {
		t.Error("empty vectors")
	}
	v := []clock.Dur{5, 2, 9, 3}
	if Spread(v) != 7 || MaxOf(v) != 9 {
		t.Errorf("Spread/MaxOf = %d/%d", Spread(v), MaxOf(v))
	}
}

func TestDetailCoversAllPolicies(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunDetail(mach, workload.Synthetic(), cfg, workload.Params{Seed: 1, Scale: 0.1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(policy.All()) {
		t.Errorf("detail rows = %d, want %d", len(r.Rows), len(policy.All()))
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	for _, p := range policy.All() {
		if !strings.Contains(sb.String(), p.String()) {
			t.Errorf("detail table missing %s", p)
		}
	}
}

func TestCSVExports(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	params := workload.Params{Seed: 1, Scale: 0.1}

	lat, err := RunLatency(mach, 0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := lat.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 5 {
		t.Errorf("latency CSV has %d lines, want 5 (header+4 nodes)", lines)
	}

	f10, err := RunFig10(mach, cfg, params, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := f10.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MEM+LLC") {
		t.Error("fig10 CSV missing policy rows")
	}

	suite, err := RunSuite(mach, []workload.Workload{workload.Synthetic()}, []Config{cfg}, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := suite.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	// header + 4 bars (buddy/BPM/MEM+LLC/other) per row.
	if lines := strings.Count(sb.String(), "\n"); lines != 5 {
		t.Errorf("suite CSV has %d lines, want 5", lines)
	}
	if !strings.Contains(sb.String(), "runtime_norm") {
		t.Error("suite CSV missing normalized column")
	}

	pt, err := RunPerThread(mach, workload.Synthetic(), cfg,
		[]policy.Policy{policy.Buddy}, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := pt.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 5 {
		t.Errorf("per-thread CSV has %d lines, want 5 (header+4 threads)", lines)
	}

	det, err := RunDetail(mach, workload.Synthetic(), cfg, params, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := det.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 8 {
		t.Errorf("detail CSV has %d lines, want 8 (header+7 policies)", lines)
	}
}

func TestParallelSuiteMatchesSequential(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	params := workload.Params{Seed: 1, Scale: 0.1}
	seq, err := RunSuiteParallel(mach, []workload.Workload{workload.Synthetic()}, []Config{cfg}, params, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSuiteParallel(mach, []workload.Workload{workload.Synthetic()}, []Config{cfg}, params, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.Rows[0], par.Rows[0]
	if a.Buddy.Runtime != b.Buddy.Runtime || a.MEMLLC.Runtime != b.MEMLLC.Runtime ||
		a.BPM.Runtime != b.BPM.Runtime || a.Other.Runtime != b.Other.Runtime ||
		a.OtherPolicy != b.OtherPolicy {
		t.Errorf("parallel suite diverged from sequential:\nseq %+v\npar %+v", a, b)
	}
}

func TestRunSweep(t *testing.T) {
	r, err := RunSweep(SweepHopCycles, []float64{0, 50}, workload.Synthetic(),
		"4_threads_4_nodes", workload.Params{Seed: 1, Scale: 0.1}, 1, 1<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("sweep points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Buddy.Mean <= 0 || p.MEMLLC.Mean <= 0 || p.RatioMean <= 0 {
			t.Errorf("degenerate sweep point %+v", p)
		}
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	r.WriteChart(&sb)
	if !strings.Contains(sb.String(), "hop-cycles") {
		t.Error("sweep outputs missing parameter name")
	}
	// Unknown parameter and bad values are rejected.
	if _, err := RunSweep(SweepParam("nope"), []float64{1}, workload.Synthetic(),
		"4_threads_4_nodes", workload.Params{Seed: 1, Scale: 0.1}, 1, 1<<30, 1); err == nil {
		t.Error("RunSweep accepted unknown parameter")
	}
	if _, err := RunSweep(SweepLLCWays, []float64{0}, workload.Synthetic(),
		"4_threads_4_nodes", workload.Params{Seed: 1, Scale: 0.1}, 1, 1<<30, 1); err == nil {
		t.Error("RunSweep accepted 0 LLC ways")
	}
}

func TestChartsRender(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	params := workload.Params{Seed: 1, Scale: 0.1}
	f10, err := RunFig10(mach, cfg, params, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f10.WriteChart(&sb)
	if !strings.Contains(sb.String(), "█") {
		t.Error("fig10 chart drew no bars")
	}
	suite, err := RunSuite(mach, []workload.Workload{workload.Synthetic()}, []Config{cfg}, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	suite.WriteRuntimeChart(&sb)
	suite.WriteIdleChart(&sb)
	out := sb.String()
	if !strings.Contains(out, "Fig. 11") || !strings.Contains(out, "Fig. 12") {
		t.Error("suite charts incomplete")
	}
	// Extreme values clip with a marker instead of overflowing.
	if got := bar(1000); !strings.HasSuffix(got, "▶") {
		t.Errorf("oversized bar not clipped: %q", got)
	}
	if bar(-1) != "" {
		t.Errorf("negative bar rendered: %q", bar(-1))
	}
}

// TestPaperClaimsValidation grades every quantified claim of the
// evaluation section against fresh measurements (the harness behind
// cmd/tintreport). Reduced scale keeps the run fast; the claims are
// scale-robust from ~0.4 up.
func TestPaperClaimsValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("claim validation skipped in -short mode")
	}
	mach := testMachine(t)
	rep, err := RunPaperValidation(mach, workload.Params{Seed: 1, Scale: shapeScale}, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) < 10 {
		t.Fatalf("only %d claims graded", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !r.Pass {
			t.Errorf("claim %q failed: expected %s, measured %s", r.ID, r.Expected, r.Measured)
		}
	}
	var sb strings.Builder
	rep.WriteMarkdown(&sb)
	if !strings.Contains(sb.String(), "claims satisfied") {
		t.Error("markdown report incomplete")
	}
}
