// Package bench assembles full experiments: it builds the simulated
// machine, pins threads per the paper's five configurations, applies
// a coloring policy, runs a workload repeatedly with varying seeds,
// and reports the metrics behind every figure of the evaluation
// (Figs. 10-14) plus the local/remote latency primer.
package bench

import (
	"fmt"
	"sync"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/pci"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Machine is an immutable description of the simulated platform;
// every run builds fresh mutable state (kernel, caches, DRAM) from
// it, so cells never contaminate each other. Aged buddy zones are
// expensive to churn, so the machine caches one prototype per churn
// seed and hands out clones.
type Machine struct {
	Topo    *topology.Topology
	Mapping *phys.Mapping
	MemCfg  mem.Config
	KernCfg kernel.Config

	mu        sync.Mutex
	zoneCache map[int64][]*buddy.Allocator
}

// NewKernel boots a fresh kernel for one run, reusing cached aged
// zones. churnSeed 0 selects the machine's default seed.
func (m *Machine) NewKernel(churnSeed int64) (*kernel.Kernel, error) {
	cfg := m.KernCfg
	if churnSeed != 0 {
		cfg.ChurnSeed = churnSeed
	}
	if cfg.ChurnSeed == 0 {
		return kernel.New(m.Topo, m.Mapping, cfg)
	}
	m.mu.Lock()
	if m.zoneCache == nil {
		m.zoneCache = make(map[int64][]*buddy.Allocator)
	}
	proto, ok := m.zoneCache[cfg.ChurnSeed]
	if !ok {
		var err error
		proto, err = kernel.BuildZones(m.Mapping, cfg)
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		m.zoneCache[cfg.ChurnSeed] = proto
	}
	zones := make([]*buddy.Allocator, len(proto))
	for i, z := range proto {
		zones[i] = z.Clone()
	}
	m.mu.Unlock()
	return kernel.NewWithZones(m.Topo, m.Mapping, cfg, zones)
}

// MachineOptions configures NewMachine.
type MachineOptions struct {
	// MemBytes is the installed physical memory (default 2 GiB).
	MemBytes uint64
	// Overlapped selects the paper-faithful Opteron mapping whose
	// bank bits overlap the LLC color bits (default: separable).
	Overlapped bool
}

// DefaultMemBytes is the evaluation machine's installed memory.
const DefaultMemBytes = 2 << 30

// NewMachine builds the paper's dual-socket Opteron 6128 platform.
// The address mapping is programmed into a simulated PCI config space
// by the BIOS and decoded back, exercising TintMalloc's boot-time
// discovery path.
func NewMachine(opts MachineOptions) (*Machine, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = DefaultMemBytes
	}
	topo := topology.Opteron6128()
	build := phys.DefaultSeparable
	if opts.Overlapped {
		build = phys.OpteronOverlapped
	}
	m, err := build(opts.MemBytes, topo.Nodes())
	if err != nil {
		return nil, err
	}
	// Round-trip through the PCI registers: the mapping the kernel
	// uses is the one read back from config space, as in the paper.
	space, err := pci.Bios(m)
	if err != nil {
		return nil, err
	}
	decoded, err := pci.DecodeMapping(space, topo.Nodes())
	if err != nil {
		return nil, fmt.Errorf("bench: PCI decode failed: %w", err)
	}
	kcfg := kernel.DefaultConfig()
	// Age the zones: a real evaluation machine's buddy lists serve
	// pages in scrambled physical order with resident pages pinning
	// the fragmentation (see DESIGN.md).
	kcfg.ChurnSeed = 0x7113
	kcfg.HoldoutFrac = 0.05
	kcfg.BuddyRemoteFrac = 0.12
	return &Machine{
		Topo:    topo,
		Mapping: decoded,
		MemCfg:  mem.DefaultConfig(),
		KernCfg: kcfg,
	}, nil
}

// Config is one of the paper's thread-pinning configurations.
type Config struct {
	Name  string
	Cores []topology.CoreID
}

// Threads returns the thread count.
func (c Config) Threads() int { return len(c.Cores) }

// Configurations returns the paper's five configurations (Sec. V-B)
// for the Opteron topology: thread counts and explicit core pinnings.
func Configurations(topo *topology.Topology) []Config {
	seq := func(cores ...int) []topology.CoreID {
		out := make([]topology.CoreID, len(cores))
		for i, c := range cores {
			out[i] = topology.CoreID(c)
		}
		return out
	}
	return []Config{
		{"16_threads_4_nodes", seq(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)},
		{"8_threads_4_nodes", seq(0, 1, 4, 5, 8, 9, 12, 13)},
		{"8_threads_2_nodes", seq(0, 1, 2, 3, 4, 5, 6, 7)},
		{"4_threads_4_nodes", seq(0, 4, 8, 12)},
		{"4_threads_1_nodes", seq(0, 1, 2, 3)},
	}
}

// ConfigByName finds a paper configuration.
func ConfigByName(topo *topology.Topology, name string) (Config, error) {
	for _, c := range Configurations(topo) {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("bench: unknown configuration %q", name)
}
