package bench

import (
	"errors"
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/fault"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

func adaptiveParams() workload.Params {
	// The harness workload's knobs are absolute; Scale only affects
	// the churner's replacement count.
	return workload.Params{Seed: 1, Scale: 1}
}

// TestAdaptiveMatrix runs the full showcase and asserts the
// acceptance criteria: adaptive beats every static policy on runtime
// with identical engine ops, drops ladder allocations below static
// MEM, and actually switches policies — with the auditor (check 7
// included) green at every barrier of every cell, each cell run twice
// and compared field-for-field.
func TestAdaptiveMatrix(t *testing.T) {
	mach, err := NewAdaptiveMachine(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptiveMatrix(mach, adaptiveParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		res.WriteTable(testWriter{t})
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i].Audits == 0 {
			t.Errorf("row %s ran without audits", res.Rows[i].Policy)
		}
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}

// TestAdaptiveHomogeneousByteIdentical is the twin-kernel
// differential: on a homogeneous mix whose stable classification
// equals the initial policy, the adaptive engine must be a perfect
// no-op — run metrics byte-identical to the same cell with no engine
// installed, switches zero, compaction cost zero (the scan may read,
// never move).
func TestAdaptiveHomogeneousByteIdentical(t *testing.T) {
	cfg4 := func(mach *Machine) Config {
		cfg, err := ConfigByName(mach.Topo, "4_threads_1_nodes")
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	cases := []struct {
		name    string
		pattern string
		initial policy.Policy
	}{
		// All-reuser: small hot sets, low miss rate, local — the
		// classifier holds every thread at LLC.
		{"reusers-LLC", "rrrr", policy.LLCOnly},
		// All-churner: tiny footprints — the classifier holds buddy.
		{"churners-buddy", "cccc", policy.Buddy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wl := workload.HeteroMix(workload.HeteroSpec{
				Pattern:     tc.pattern,
				StreamBytes: 8 << 20,
				Epochs:      4,
			})
			mach, err := NewAdaptiveMachine(false)
			if err != nil {
				t.Fatal(err)
			}
			cfg := cfg4(mach)
			static, err := RunAdaptive(mach, AdaptiveOptions{
				Workload: wl, Config: cfg, Params: adaptiveParams(), Initial: tc.initial,
			})
			if err != nil {
				t.Fatal(err)
			}
			adaptive, err := RunAdaptive(mach, AdaptiveOptions{
				Workload: wl, Config: cfg, Params: adaptiveParams(),
				Initial: tc.initial, Adaptive: true, CompactBudget: AdaptiveCompactBudget,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(adaptive.Switches) != 0 {
				t.Fatalf("homogeneous mix released switches: %+v", adaptive.Switches)
			}
			if adaptive.CompactCost != 0 || adaptive.Compact.PagesMoved != 0 || adaptive.Compact.LoansMoved != 0 {
				t.Fatalf("homogeneous mix compaction moved pages: %+v (cost %d)",
					adaptive.Compact, adaptive.CompactCost)
			}
			if !reflect.DeepEqual(static.Metrics, adaptive.Metrics) {
				t.Fatalf("adaptive engine perturbed a homogeneous run:\nstatic   %+v\nadaptive %+v",
					static.Metrics, adaptive.Metrics)
			}
		})
	}
}

// TestAdaptiveDisabledReference pins the reference mode: a
// DisableAdaptive kernel refuses the engine loudly, and with the
// engine off its static path is byte-identical to a stock kernel's.
func TestAdaptiveDisabledReference(t *testing.T) {
	ref, err := NewAdaptiveMachine(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigByName(ref.Topo, adaptiveConfig)
	if err != nil {
		t.Fatal(err)
	}
	wl := AdaptiveWorkload()
	_, err = RunAdaptive(ref, AdaptiveOptions{
		Workload: wl, Config: cfg, Params: adaptiveParams(),
		Initial: policy.MEMLLC, Adaptive: true, CompactBudget: AdaptiveCompactBudget,
	})
	if !errors.Is(err, kernel.ErrAdaptiveDisabled) {
		t.Fatalf("adaptive engine on a DisableAdaptive kernel: err = %v, want ErrAdaptiveDisabled", err)
	}

	refRow, err := RunAdaptive(ref, AdaptiveOptions{
		Workload: wl, Config: cfg, Params: adaptiveParams(), Initial: policy.MEMLLC,
	})
	if err != nil {
		t.Fatal(err)
	}
	stock, err := NewAdaptiveMachine(false)
	if err != nil {
		t.Fatal(err)
	}
	stockRow, err := RunAdaptive(stock, AdaptiveOptions{
		Workload: wl, Config: cfg, Params: adaptiveParams(), Initial: policy.MEMLLC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refRow, stockRow) {
		t.Fatalf("DisableAdaptive changed the static path:\nref   %+v\nstock %+v", refRow, stockRow)
	}
}

// TestAdaptiveChaos reruns the adaptive cell under the migrate-flaky
// plan: injected migration faults must degrade compaction gracefully
// (failed moves stay loaned, retried later) with the auditor still
// green at every barrier and the run still deterministic.
func TestAdaptiveChaos(t *testing.T) {
	mach, err := NewAdaptiveMachine(false)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigByName(mach.Topo, adaptiveConfig)
	if err != nil {
		t.Fatal(err)
	}
	plan := migrateFlakyPlan(t)
	row, err := runAdaptiveCellTwice(mach, AdaptiveOptions{
		Workload: AdaptiveWorkload(), Config: cfg, Params: adaptiveParams(),
		Initial: policy.MEMLLC, Adaptive: true,
		CompactBudget: AdaptiveCompactBudget, Plan: &plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.OOM {
		t.Skip("plan drove the cell to OOM; nothing further to assert")
	}
	if row.Audits == 0 {
		t.Fatal("chaos cell ran without audits")
	}
	if row.Compact.LoansFailed+row.Compact.PagesFailed == 0 {
		t.Error("migrate-flaky plan injected no compaction failures")
	}
}

// migrateFlakyPlan finds the fault plan that makes Migrate flaky.
func migrateFlakyPlan(t *testing.T) fault.Plan {
	t.Helper()
	p, err := fault.PlanByName("migrate-flaky")
	if err != nil {
		t.Fatal(err)
	}
	return p
}
