package bench

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/heap"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/stats"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// RunSpec names one experiment cell.
type RunSpec struct {
	Workload workload.Workload
	Config   Config
	Policy   policy.Policy
	Params   workload.Params
	// ChurnSeed overrides the machine's zone-aging seed (0 keeps
	// the default). RunRepeated varies it per repetition so error
	// bars reflect physical-placement variation, the dominant
	// run-to-run noise on the real hardware.
	ChurnSeed int64
}

// RunMetrics captures everything one run produces.
type RunMetrics struct {
	Runtime       clock.Dur
	TotalIdle     clock.Dur
	ThreadRuntime []clock.Dur
	ThreadIdle    []clock.Dur
	FaultCycles   clock.Dur // summed over threads
	Ops           uint64    // engine ops executed (perf accounting)
	// Memory-system ratios (0..1).
	RemoteDRAMFrac  float64 // remote / all DRAM demand reads
	L3MissRate      float64
	RowConflictFrac float64 // row conflicts / DRAM accesses
}

// Run executes one cell on fresh machine state.
func Run(mach *Machine, spec RunSpec) (RunMetrics, error) {
	return RunInstrumented(mach, spec, nil)
}

// RunInstrumented is Run with a hook between machine boot and
// workload execution: instrument (if non-nil) receives the freshly
// built kernel and engine after tasks are created and colored but
// before any page is mapped, so callers can wire fault injectors,
// audit hooks or tracers into the run. The chaos harness is the main
// customer. Instrument functions must obey the scatter/gather
// determinism contract (pure function of the spec; no shared mutable
// state), or -parallel stops being output-neutral.
func RunInstrumented(mach *Machine, spec RunSpec, instrument func(*kernel.Kernel, *engine.Engine)) (RunMetrics, error) {
	var out RunMetrics
	ms, err := mem.New(mach.Topo, mach.Mapping, mach.MemCfg)
	if err != nil {
		return out, err
	}
	k, err := mach.NewKernel(spec.ChurnSeed)
	if err != nil {
		return out, err
	}
	asn, err := policy.Plan(spec.Policy, mach.Mapping, mach.Topo, spec.Config.Cores)
	if err != nil {
		return out, err
	}
	proc := k.NewProcess()
	threads := make([]engine.Thread, len(spec.Config.Cores))
	for i, core := range spec.Config.Cores {
		task, err := proc.NewTask(core)
		if err != nil {
			return out, err
		}
		if err := policy.Apply(task, asn[i]); err != nil {
			return out, err
		}
		threads[i] = engine.Thread{Task: task, Heap: heap.New(task)}
	}
	e, err := engine.New(ms, threads)
	if err != nil {
		return out, err
	}
	if instrument != nil {
		instrument(k, e)
	}
	phases, err := spec.Workload.Build(threads, spec.Params)
	if err != nil {
		return out, err
	}
	res, err := e.Run(phases)
	if err != nil {
		return out, fmt.Errorf("bench: %s/%s/%s: %w",
			spec.Workload.Name, spec.Config.Name, spec.Policy, err)
	}

	out.Runtime = res.Runtime
	out.TotalIdle = res.TotalIdle
	out.ThreadRuntime = res.ThreadRuntime
	out.ThreadIdle = res.ThreadIdle
	out.Ops = res.Ops
	for _, f := range res.FaultCycles {
		out.FaultCycles += f
	}
	tot := ms.TotalStats()
	if tot.DRAMReads > 0 {
		out.RemoteDRAMFrac = float64(tot.RemoteDRAM) / float64(tot.DRAMReads)
	}
	l3 := ms.L3Stats()
	if l3.Accesses > 0 {
		out.L3MissRate = float64(l3.Misses) / float64(l3.Accesses)
	}
	d := ms.DRAM().TotalStats()
	if d.Accesses > 0 {
		out.RowConflictFrac = float64(d.RowConflicts) / float64(d.Accesses)
	}
	return out, nil
}

// Cell aggregates repeated runs of one spec (the paper repeats every
// experiment ten times and reports averages with min/max error bars).
type Cell struct {
	Spec    RunSpec
	Runtime stats.Summary
	Idle    stats.Summary
	// Ops is the engine-op total across the repetitions, the work
	// unit behind the benchmark harness's ops/sec figures.
	Ops uint64
	// Last holds the final repetition's full metrics (per-thread
	// vectors, memory ratios).
	Last RunMetrics
}

// RunRepeated executes the cell `repeats` times with consecutive
// seeds and summarizes.
func RunRepeated(mach *Machine, spec RunSpec, repeats int) (Cell, error) {
	if repeats < 1 {
		repeats = 1
	}
	cell := Cell{Spec: spec}
	var runtimes, idles []float64
	for r := 0; r < repeats; r++ {
		rs := spec
		rs.Params.Seed = spec.Params.Seed + int64(r)*10007
		rs.ChurnSeed = mach.KernCfg.ChurnSeed + int64(r)*131
		m, err := Run(mach, rs)
		if err != nil {
			return cell, err
		}
		runtimes = append(runtimes, float64(m.Runtime))
		idles = append(idles, float64(m.TotalIdle))
		cell.Ops += m.Ops
		cell.Last = m
	}
	cell.Runtime = stats.Summarize(runtimes)
	cell.Idle = stats.Summarize(idles)
	return cell, nil
}
