package bench

import (
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
)

func TestRunNetServeCell(t *testing.T) {
	spec := NetServeSpec{Name: "4_conns", Conns: 4, Ops: 400}
	cell, err := RunNetServeCell(spec, 64<<20, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if cell.Stats.Allocs != cell.Stats.Frees {
		t.Fatalf("unbalanced after drain: %+v", cell.Stats)
	}
	if cell.Daemon.Sessions != 4 {
		t.Fatalf("sessions %d, want 4", cell.Daemon.Sessions)
	}
}

func TestRunNetServeCellRejectsBadSpec(t *testing.T) {
	if _, err := RunNetServeCell(NetServeSpec{Name: "zero"}, 64<<20, serve.Config{}); err == nil {
		t.Fatal("zero spec accepted")
	}
}

// TestRunChurnCellDeterministic pins the task-churn cell's claim:
// the daemon's serial dispatch scheduler makes both the scheduler
// result and the serving counters spec-determined, run to run.
func TestRunChurnCellDeterministic(t *testing.T) {
	spec := ChurnSpec{Name: "rr_4", Policy: sched.RR, Tasks: 4, Ops: 200}
	a, err := RunChurnCell(spec, 64<<20, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurnCell(spec, 64<<20, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Errorf("scheduler results vary run to run:\n%+v\n%+v", a.Result, b.Result)
	}
	if a.Stats != b.Stats {
		t.Errorf("serving counters vary run to run:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Result.Ops == 0 || len(a.Result.Tasks) != spec.Tasks {
		t.Errorf("implausible result: %+v", a.Result)
	}
}

func TestRunChurnCellRejectsBadSpec(t *testing.T) {
	if _, err := RunChurnCell(ChurnSpec{Name: "zero", Policy: sched.FIFO}, 64<<20, serve.Config{}); err == nil {
		t.Fatal("zero spec accepted")
	}
}
