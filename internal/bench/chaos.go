package bench

import (
	"errors"
	"fmt"
	"io"
	"reflect"

	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/fault"
	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/stats"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// The chaos harness: every workload of the suite runs once clean and
// once under each named fault plan (internal/fault), with the
// invariant auditor wired to the engine so bookkeeping is re-checked
// after every phase. Each cell is executed twice and the two runs are
// compared field-for-field — a chaos run that is not byte-identical
// under a fixed seed is itself a bug, per the determinism contract
// the injector is built around.

// ChaosRow is one (workload, plan) cell of the chaos matrix.
type ChaosRow struct {
	Workload string
	Plan     string // "clean" for the no-fault baseline
	// OOM reports that the run died of machine-wide exhaustion under
	// the plan (possible when a plan makes every zone of a request
	// refuse at once); metrics other than Kern/Inj are then zero.
	OOM     bool
	Metrics RunMetrics
	Kern    kernel.Stats
	Inj     fault.Stats
	Loans   int // loans still outstanding at run end
	Audits  int // invariant audits passed (one per engine phase)
}

// DegradedTotal sums the row's ladder allocations across rungs.
func (r *ChaosRow) DegradedTotal() uint64 {
	var t uint64
	for _, n := range r.Kern.DegradedAllocs {
		t += n
	}
	return t
}

// DegradedRate returns ladder allocations as a fraction of all page
// faults served.
func (r *ChaosRow) DegradedRate() float64 {
	return stats.Ratio(float64(r.DegradedTotal()), float64(r.Kern.Faults))
}

// ChaosResult is the full chaos matrix for one configuration/policy.
type ChaosResult struct {
	Config Config
	Policy string
	Plans  []fault.Plan
	// Rows is workload-major: for each workload, the clean baseline
	// followed by one row per plan, in Plans order.
	Rows []ChaosRow
}

// baseline returns the clean row for a workload.
func (c *ChaosResult) baseline(wl string) *ChaosRow {
	for i := range c.Rows {
		if c.Rows[i].Workload == wl && c.Rows[i].Plan == "clean" {
			return &c.Rows[i]
		}
	}
	return nil
}

// VsClean returns the row's runtime relative to its workload's clean
// baseline (NaN when the baseline is missing or the row OOMed).
func (c *ChaosResult) VsClean(r *ChaosRow) float64 {
	b := c.baseline(r.Workload)
	if b == nil || r.OOM {
		return stats.NormRatio(0, 0)
	}
	return stats.NormRatio(float64(r.Metrics.Runtime), float64(b.Metrics.Runtime))
}

// chaosSeed derives one cell's injector seed from the run seed and
// plan name, so different plans draw independent decision streams
// from the same base seed.
func chaosSeed(seed int64, plan string) uint64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for i := 0; i < len(plan); i++ {
		h = (h ^ uint64(plan[i])) * 1099511628211
	}
	return h
}

// runChaosCell executes one cell with the auditor attached and, when
// plan is non-nil, the fault injector wired into the fresh kernel.
func runChaosCell(mach *Machine, spec RunSpec, plan *fault.Plan) (ChaosRow, error) {
	row := ChaosRow{Workload: spec.Workload.Name, Plan: "clean"}
	var (
		inj     *fault.Injector
		kk      *kernel.Kernel
		wireErr error
	)
	m, err := RunInstrumented(mach, spec, func(k *kernel.Kernel, e *engine.Engine) {
		kk = k
		if plan != nil {
			row.Plan = plan.Name
			inj = fault.New(chaosSeed(spec.Params.Seed, plan.Name), *plan)
			if werr := inj.Wire(k); werr != nil {
				wireErr = werr
				return
			}
		}
		e.SetAuditHook(func() error {
			row.Audits++
			return invariant.Audit(k).Err()
		})
	})
	if wireErr != nil {
		return row, wireErr
	}
	if kk != nil {
		row.Kern = kk.Stats()
		row.Loans = kk.Loans()
	}
	if inj != nil {
		row.Inj = inj.Stats()
	}
	switch {
	case err == nil:
		row.Metrics = m
	case plan != nil && errors.Is(err, kernel.ErrNoMemory):
		// Under an injected plan, machine-wide OOM is a legitimate —
		// and deterministic — outcome, not a harness failure.
		row.OOM = true
		row.Metrics = RunMetrics{}
	default:
		return row, err
	}
	return row, nil
}

// RunChaos executes the chaos matrix: each workload clean and under
// every plan, up to `workers` cells concurrently through the shared
// scatter/gather runner. Every cell runs twice and the harness fails
// if the repetitions differ anywhere — the determinism assertion the
// fault injector's contract promises.
func RunChaos(mach *Machine, cfg Config, pol string, loads []workload.Workload,
	plans []fault.Plan, params workload.Params, workers int) (*ChaosResult, error) {
	p, err := policyByName(pol)
	if err != nil {
		return nil, err
	}
	out := &ChaosResult{Config: cfg, Policy: pol, Plans: plans}
	perWl := len(plans) + 1
	rows, err := gather(len(loads)*perWl, workers, func(i int) (ChaosRow, error) {
		wl := loads[i/perWl]
		var plan *fault.Plan
		if pi := i % perWl; pi > 0 {
			plan = &plans[pi-1]
		}
		spec := RunSpec{Workload: wl, Config: cfg, Policy: p, Params: params}
		first, err := runChaosCell(mach, spec, plan)
		if err != nil {
			return first, err
		}
		again, err := runChaosCell(mach, spec, plan)
		if err != nil {
			return first, err
		}
		if !reflect.DeepEqual(first, again) {
			return first, fmt.Errorf("bench: chaos cell %s/%s is nondeterministic: %+v != %+v",
				wl.Name, first.Plan, first, again)
		}
		return first, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// policyByName resolves a policy string against policy.All().
func policyByName(name string) (policy.Policy, error) {
	for _, p := range policy.All() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("bench: unknown policy %q", name)
}

// WriteTable prints the degradation and divergence-impact tables.
func (c *ChaosResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Chaos — graceful degradation under %s (%s)\n", c.Policy, c.Config.Name)
	fmt.Fprintf(w, "%-10s %-15s %12s %8s %7s %7s %7s %6s %6s %7s %8s %6s\n",
		"workload", "plan", "runtime", "vs-clean",
		"borrow", "localU", "remote", "degr%", "loans", "reclaim", "injected", "audits")
	for i := range c.Rows {
		r := &c.Rows[i]
		runtime, vs := fmt.Sprintf("%d", r.Metrics.Runtime), fmt.Sprintf("%8.3f", c.VsClean(r))
		if r.OOM {
			runtime, vs = "OOM", "     OOM"
		}
		fmt.Fprintf(w, "%-10s %-15s %12s %s %7d %7d %7d %5.1f%% %6d %7d %8d %6d\n",
			r.Workload, r.Plan, runtime, vs,
			r.Kern.DegradedAllocs[kernel.RungBorrowColor],
			r.Kern.DegradedAllocs[kernel.RungLocalUncolored],
			r.Kern.DegradedAllocs[kernel.RungRemote],
			r.DegradedRate()*100, r.Loans,
			r.Kern.LoansReclaimed, r.Inj.TotalInjected(), r.Audits)
	}
	fmt.Fprintf(w, "\nChaos — divergence impact (memory-system view)\n")
	fmt.Fprintf(w, "%-10s %-15s %8s %8s %9s %9s\n",
		"workload", "plan", "remote%", "Δremote", "L3miss%", "rowconf%")
	for i := range c.Rows {
		r := &c.Rows[i]
		if r.OOM {
			fmt.Fprintf(w, "%-10s %-15s %8s %8s %9s %9s\n", r.Workload, r.Plan, "OOM", "-", "-", "-")
			continue
		}
		var delta float64
		if b := c.baseline(r.Workload); b != nil {
			delta = (r.Metrics.RemoteDRAMFrac - b.Metrics.RemoteDRAMFrac) * 100
		}
		fmt.Fprintf(w, "%-10s %-15s %7.1f%% %+7.1f%% %8.1f%% %8.1f%%\n",
			r.Workload, r.Plan,
			r.Metrics.RemoteDRAMFrac*100, delta,
			r.Metrics.L3MissRate*100, r.Metrics.RowConflictFrac*100)
	}
}
