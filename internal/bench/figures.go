package bench

import (
	"fmt"
	"io"
	"strings"
)

// Text bar-chart rendering of the paper's figures, so tintbench can
// show the evaluation the way the paper presents it — grouped bars
// normalized to buddy — without leaving the terminal.

const barWidth = 40 // characters for a bar of value barScale
const barScale = 2.0

func bar(v float64) string {
	if v < 0 {
		v = 0
	}
	n := int(v / barScale * barWidth)
	if n > barWidth {
		return strings.Repeat("█", barWidth) + "▶"
	}
	return strings.Repeat("█", n)
}

// WriteChart renders Fig. 10 as horizontal bars (buddy = 1.0).
func (r *Fig10Result) WriteChart(w io.Writer) {
	fmt.Fprintf(w, "Fig. 10 — synthetic benchmark, %s (bars normalized to buddy; shorter is faster)\n",
		r.Config.Name)
	base := r.Cells[0].Runtime.Mean
	for i, p := range r.Policies {
		v := r.Cells[i].Runtime.Mean / base
		fmt.Fprintf(w, "  %-14s %5.3f %s\n", p.String(), v, bar(v))
	}
}

// WriteRuntimeChart renders Fig. 11 as grouped bars.
func (s *SuiteResult) WriteRuntimeChart(w io.Writer) {
	fmt.Fprintln(w, "Fig. 11 — benchmark runtime normalized to buddy (shorter is faster)")
	s.writeChart(w, func(r *SuiteRow, c Cell) float64 { return r.NormRuntime(c) })
}

// WriteIdleChart renders Fig. 12 as grouped bars.
func (s *SuiteResult) WriteIdleChart(w io.Writer) {
	fmt.Fprintln(w, "Fig. 12 — total idle time normalized to buddy (shorter is better)")
	s.writeChart(w, func(r *SuiteRow, c Cell) float64 { return r.NormIdle(c) })
}

func (s *SuiteResult) writeChart(w io.Writer, norm func(*SuiteRow, Cell) float64) {
	lastCfg := ""
	for i := range s.Rows {
		r := &s.Rows[i]
		if r.Config != lastCfg {
			fmt.Fprintf(w, "%s\n", r.Config)
			lastCfg = r.Config
		}
		fmt.Fprintf(w, "  %s\n", r.Workload)
		rows := []struct {
			name string
			cell Cell
		}{
			{"buddy", r.Buddy},
			{"BPM", r.BPM},
			{"MEM+LLC", r.MEMLLC},
			{r.OtherPolicy.String(), r.Other},
		}
		for _, b := range rows {
			v := norm(r, b.cell)
			fmt.Fprintf(w, "    %-14s %6.3f %s\n", b.name, v, bar(v))
		}
	}
}

// WriteChart renders a sensitivity sweep as a ratio-vs-value series.
func (r *SweepResult) WriteChart(w io.Writer) {
	fmt.Fprintf(w, "Sweep %s — MEM+LLC/buddy runtime ratio on %s (%s)\n",
		r.Param, r.Workload, r.Config.Name)
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-10g %6.3f %s\n", p.Value, p.RatioMean, bar(p.RatioMean))
	}
}
