package bench

import (
	"runtime"
	"testing"
	"time"

	"github.com/tintmalloc/tintmalloc/internal/serve"
)

// waitGoroutines polls until the goroutine count drops back to the
// baseline (shutdown is asynchronous: workers observe the stop signal
// on their next poll) or the deadline passes.
func waitGoroutines(t *testing.T, baseline int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s leaked goroutines: %d, baseline %d", what, runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunServeCellErrorPathsReleaseGoroutines is the regression for
// the error-path shutdown bug: a cell that fails after the server (or
// the offload front-end) has started its workers must still tear them
// all down on the way out. Every failure injected here happens after
// serve.New has spawned the per-shard refill workers.
func TestRunServeCellErrorPathsReleaseGoroutines(t *testing.T) {
	const mem = 64 << 20
	baseline := runtime.NumGoroutine()

	// Plan failure: more clients than LLC colors. serve.New has
	// already started its workers when policy.Plan rejects the fleet.
	spec := ServeSpec{Name: "overcommit", Nodes: 1, Clients: 4096, Ops: 10}
	if _, err := RunServeCell(spec, mem, serve.Config{}); err == nil {
		t.Fatal("overcommitted plan accepted")
	}
	waitGoroutines(t, baseline, "plan failure")

	// Offload boot failure: a non-power-of-two ring depth is rejected
	// by serve.NewOffload after the base server is already running.
	spec = ServeSpec{Name: "badring", Nodes: 1, Clients: 2, Ops: 10}
	if _, err := RunOffloadServeCell(spec, mem, serve.Config{}, serve.OffloadConfig{RingDepth: 3}); err == nil {
		t.Fatal("non-power-of-two ring depth accepted")
	}
	waitGoroutines(t, baseline, "offload boot failure")

	// Bad spec before any boot: trivially clean, pinned anyway so the
	// early-return path stays allocation-free.
	if _, err := RunServeCell(ServeSpec{Name: "empty"}, mem, serve.Config{}); err == nil {
		t.Fatal("zero spec accepted")
	}
	waitGoroutines(t, baseline, "spec rejection")

	// A successful run for contrast: everything it spawned must be
	// gone once it returns, including the offload cores it stops
	// explicitly before the audit (and again via defer).
	spec = ServeSpec{Name: "ok", Nodes: 2, Clients: 4, Ops: 500}
	if _, err := RunOffloadServeCell(spec, mem, serve.Config{}, serve.OffloadConfig{}); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline, "clean offload run")
}
