package bench

import (
	"fmt"
	"io"

	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// Structured validation of the paper's quantitative claims: each
// Claim encodes one sentence of the evaluation section as a checkable
// predicate over fresh measurements. RunPaperValidation re-runs the
// experiments and grades every claim, producing the paper-vs-measured
// evidence behind EXPERIMENTS.md in one command (cmd/tintreport).

// ClaimResult grades one claim.
type ClaimResult struct {
	ID       string
	Claim    string // the paper's statement
	Expected string // the quantitative expectation checked
	Measured string
	Pass     bool
}

// ValidationReport is the full grading.
type ValidationReport struct {
	Results []ClaimResult
}

// Passed counts satisfied claims.
func (v *ValidationReport) Passed() int {
	n := 0
	for _, r := range v.Results {
		if r.Pass {
			n++
		}
	}
	return n
}

// RunPaperValidation executes the experiments backing every graded
// claim, running up to `workers` independent cells concurrently
// (byte-identical grading at any value). scale trades fidelity for
// speed (1.0 = paper size; the claims hold from ~0.4 upward).
func RunPaperValidation(mach *Machine, params workload.Params, repeats, workers int, w io.Writer) (*ValidationReport, error) {
	progress := func(format string, args ...any) {
		if w != nil {
			fmt.Fprintf(w, format, args...)
		}
	}
	rep := &ValidationReport{}
	add := func(id, claim, expected, measured string, pass bool) {
		rep.Results = append(rep.Results, ClaimResult{
			ID: id, Claim: claim, Expected: expected, Measured: measured, Pass: pass,
		})
	}

	cfg16, err := ConfigByName(mach.Topo, "16_threads_4_nodes")
	if err != nil {
		return nil, err
	}
	cfg4, err := ConfigByName(mach.Topo, "4_threads_1_nodes")
	if err != nil {
		return nil, err
	}

	// Claim 1: local controller latency is much lower than remote.
	progress("measuring latency primer...\n")
	lat, err := RunLatency(mach, 0, 256, workers)
	if err != nil {
		return nil, err
	}
	local, far := lat.Rows[0].Cycles, lat.Rows[len(lat.Rows)-1].Cycles
	add("latency",
		"the latency of local memory controller accesses is much lower than that of remote accesses (Sec. V claim 1)",
		"3-hop latency >= 1.3x local",
		fmt.Sprintf("local %.1f cycles, 3-hop %.1f cycles (%.2fx)", local, far, far/local),
		far >= 1.3*local)

	// Claim 2: synthetic benchmark — MEM, LLC and MEM/LLC coloring
	// all reduce execution time, MEM/LLC the most.
	progress("running Fig. 10 synthetic sweep...\n")
	f10, err := RunFig10(mach, cfg16, params, repeats, workers)
	if err != nil {
		return nil, err
	}
	runtimes := map[policy.Policy]float64{}
	for i, p := range f10.Policies {
		runtimes[p] = f10.Cells[i].Runtime.Mean
	}
	buddy := runtimes[policy.Buddy]
	pass := runtimes[policy.LLCOnly] < buddy && runtimes[policy.MEMOnly] < buddy &&
		runtimes[policy.MEMLLC] < buddy &&
		runtimes[policy.MEMLLC] <= runtimes[policy.LLCOnly] &&
		runtimes[policy.MEMLLC] <= runtimes[policy.MEMOnly]
	add("fig10",
		"MEM, LLC and MEM/LLC coloring all reduce the synthetic benchmark's execution time; MEM/LLC is shortest (Fig. 10)",
		"MEM+LLC < {LLC, MEM} < buddy",
		fmt.Sprintf("buddy %.3g, LLC %.3g, MEM %.3g, MEM+LLC %.3g",
			buddy, runtimes[policy.LLCOnly], runtimes[policy.MEMOnly], runtimes[policy.MEMLLC]),
		pass)

	// Claims 3-6 need the headline cell and the small configuration —
	// five independent cells, gathered concurrently.
	progress("running lbm cells (16_threads_4_nodes, 4_threads_1_nodes)...\n")
	lbm := workload.LBM()
	lbmSpecs := []RunSpec{
		{Workload: lbm, Config: cfg16, Policy: policy.Buddy, Params: params},
		{Workload: lbm, Config: cfg16, Policy: policy.MEMLLC, Params: params},
		{Workload: lbm, Config: cfg16, Policy: policy.BPM, Params: params},
		{Workload: lbm, Config: cfg4, Policy: policy.Buddy, Params: params},
		{Workload: lbm, Config: cfg4, Policy: policy.MEMLLC, Params: params},
	}
	lbmCells, err := gather(len(lbmSpecs), workers, func(i int) (RunMetrics, error) {
		return Run(mach, lbmSpecs[i])
	})
	if err != nil {
		return nil, err
	}
	b16, c16, p16, b4, c4 := lbmCells[0], lbmCells[1], lbmCells[2], lbmCells[3], lbmCells[4]

	ratio16 := float64(c16.Runtime) / float64(b16.Runtime)
	add("lbm-runtime",
		"TintMalloc reduces the runtime of parallel programs; up to ~30% for SPEC/lbm at 16 threads / 4 nodes (Fig. 11)",
		"MEM+LLC/buddy runtime ratio in (0.5, 0.95)",
		fmt.Sprintf("ratio %.3f (paper ~0.70)", ratio16),
		ratio16 > 0.5 && ratio16 < 0.95)

	add("bpm",
		"BPM always results in longer runtimes than our coloring approach and the standard buddy allocator (Sec. V-B)",
		"BPM runtime > buddy > MEM+LLC",
		fmt.Sprintf("BPM %.3gx buddy; MEM+LLC %.3gx buddy",
			float64(p16.Runtime)/float64(b16.Runtime), ratio16),
		p16.Runtime > b16.Runtime && c16.Runtime < b16.Runtime)

	idleRatio := float64(c16.TotalIdle) / float64(b16.TotalIdle)
	add("lbm-idle",
		"MEM+LLC coloring results in up to 74.3% lower idle time for 16_threads_4_nodes (Fig. 12)",
		"idle ratio < 0.6",
		fmt.Sprintf("idle ratio %.3f (paper 0.257)", idleRatio),
		idleRatio < 0.6)

	spreadRatio := float64(Spread(b16.ThreadRuntime)) / float64(Spread(c16.ThreadRuntime))
	add("lbm-balance",
		"the max-min thread runtime spread under buddy is 4.38x larger than under MEM+LLC for lbm (Fig. 13)",
		"spread ratio > 2",
		fmt.Sprintf("spread ratio %.2fx (paper 4.38x)", spreadRatio),
		spreadRatio > 2)

	maxDrop := 1 - float64(MaxOf(c16.ThreadRuntime))/float64(MaxOf(b16.ThreadRuntime))
	add("lbm-maxthread",
		"the maximum thread runtime under MEM+LLC is 30.77% smaller than under buddy (Fig. 13)",
		"slowest thread >= 15% faster",
		fmt.Sprintf("%.1f%% faster (paper 30.8%%)", maxDrop*100),
		maxDrop >= 0.15)

	gain16 := 1 - ratio16
	gain4 := 1 - float64(c4.Runtime)/float64(b4.Runtime)
	add("parallelism-scaling",
		"16_threads_4_nodes experiences the largest performance boost (Sec. V-B)",
		"gain(16t4n) > gain(4t1n)",
		fmt.Sprintf("16t4n %.1f%%, 4t1n %.1f%%", gain16*100, gain4*100),
		gain16 > gain4)

	// Claim: blackscholes shows the least improvement of the six.
	progress("running blackscholes cells...\n")
	bsSpecs := []RunSpec{
		{Workload: workload.Blackscholes(), Config: cfg16, Policy: policy.Buddy, Params: params},
		{Workload: workload.Blackscholes(), Config: cfg16, Policy: policy.MEMLLC, Params: params},
	}
	bsCells, err := gather(len(bsSpecs), workers, func(i int) (RunMetrics, error) {
		return Run(mach, bsSpecs[i])
	})
	if err != nil {
		return nil, err
	}
	bsBuddy, bsColored := bsCells[0], bsCells[1]
	bsGain := 1 - float64(bsColored.Runtime)/float64(bsBuddy.Runtime)
	add("blackscholes",
		"Parsec/blackscholes has the least performance improvement of the six benchmarks (Sec. V-B)",
		"blackscholes MEM+LLC gain < lbm gain",
		fmt.Sprintf("blackscholes %.1f%%, lbm %.1f%%", bsGain*100, gain16*100),
		bsGain < gain16)

	// Mechanism claims.
	add("no-remote",
		"with our approach, accesses to a remote memory node can be avoided for all tasks (Sec. VII)",
		"MEM+LLC remote DRAM fraction == 0",
		fmt.Sprintf("remote fraction %.3f", c16.RemoteDRAMFrac),
		c16.RemoteDRAMFrac == 0)
	add("bpm-remote",
		"with BPM, tasks may access remote memory nodes and pay the remote access penalty (Sec. V-B)",
		"BPM remote DRAM fraction > 0.5",
		fmt.Sprintf("remote fraction %.3f", p16.RemoteDRAMFrac),
		p16.RemoteDRAMFrac > 0.5)

	return rep, nil
}

// WriteMarkdown renders the report as a markdown table.
func (v *ValidationReport) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "# Paper-claim validation\n\n")
	fmt.Fprintf(w, "%d of %d claims satisfied.\n\n", v.Passed(), len(v.Results))
	fmt.Fprintf(w, "| # | claim | expectation | measured | verdict |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|\n")
	for _, r := range v.Results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "**FAIL**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			r.ID, r.Claim, r.Expected, r.Measured, verdict)
	}
}
