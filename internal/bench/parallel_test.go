package bench

import (
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/fault"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// The differential battery behind the scatter/gather determinism
// contract (DESIGN.md Sec. 8): every experiment must render
// byte-identical output whether its cells run sequentially or on
// eight workers. The renders go through WriteJSON so the comparison
// covers runtimes, idle, engine-op counts and the diagnostic
// fractions of every cell, not just headline means. CI runs this
// under -race, which additionally catches any unsynchronized sharing
// between cells even when it happens not to change the output.
func TestParallelExperimentsMatchSequential(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	params := workload.Params{Seed: 1, Scale: 0.1}
	wl := workload.Synthetic()

	experiments := []struct {
		name   string
		render func(workers int) (string, error)
	}{
		{"latency", func(workers int) (string, error) {
			r, err := RunLatency(mach, 0, 128, workers)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			r.WriteTable(&sb)
			err = r.WriteJSON(&sb)
			return sb.String(), err
		}},
		{"fig10", func(workers int) (string, error) {
			r, err := RunFig10(mach, cfg, params, 2, workers)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			r.WriteTable(&sb)
			if err := r.WriteCSV(&sb); err != nil {
				return "", err
			}
			err = r.WriteJSON(&sb)
			return sb.String(), err
		}},
		{"suite", func(workers int) (string, error) {
			r, err := RunSuiteParallel(mach, []workload.Workload{wl}, []Config{cfg}, params, 2, workers)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			r.WriteRuntimeTable(&sb)
			r.WriteIdleTable(&sb)
			err = r.WriteJSON(&sb)
			return sb.String(), err
		}},
		{"perthread", func(workers int) (string, error) {
			r, err := RunPerThread(mach, wl, cfg,
				[]policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC}, params, workers)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			r.WriteTables(&sb)
			err = r.WriteJSON(&sb)
			return sb.String(), err
		}},
		{"detail", func(workers int) (string, error) {
			r, err := RunDetail(mach, wl, cfg, params, 2, workers)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			r.WriteTable(&sb)
			err = r.WriteJSON(&sb)
			return sb.String(), err
		}},
		{"chaos", func(workers int) (string, error) {
			r, err := RunChaos(mach, cfg, "MEM+LLC", []workload.Workload{wl},
				fault.Plans(), params, workers)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			r.WriteTable(&sb)
			if err := r.WriteCSV(&sb); err != nil {
				return "", err
			}
			err = r.WriteJSON(&sb)
			return sb.String(), err
		}},
		{"sweep", func(workers int) (string, error) {
			r, err := RunSweep(SweepHopCycles, []float64{0, 50}, wl,
				"4_threads_4_nodes", params, 2, 1<<30, workers)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			r.WriteTable(&sb)
			err = r.WriteJSON(&sb)
			return sb.String(), err
		}},
	}

	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			seq, err := e.render(1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := e.render(8)
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Errorf("%s output differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					e.name, seq, par)
			}
		})
	}
}

// gather itself: order, error selection, and the degenerate worker
// counts the experiments rely on.
func TestGather(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		got, err := gather(10, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	// Lowest-index error wins regardless of completion order.
	_, err := gather(10, 4, func(i int) (int, error) {
		if i == 7 || i == 3 {
			return 0, errIndexed(i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "job 3 failed" {
		t.Fatalf("gather error = %v, want job 3", err)
	}
	// n == 0 is a no-op.
	if out, err := gather(0, 4, func(i int) (int, error) { return 0, errIndexed(i) }); err != nil || len(out) != 0 {
		t.Fatalf("gather(0) = %v, %v", out, err)
	}
}

type errIndexed int

func (e errIndexed) Error() string { return "job " + string(rune('0'+int(e))) + " failed" }
