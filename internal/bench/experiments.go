package bench

import (
	"fmt"
	"io"
	"sort"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/stats"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// Fig10Policies are the coloring schemes the synthetic benchmark
// compares (paper Fig. 10).
func Fig10Policies() []policy.Policy {
	return []policy.Policy{policy.Buddy, policy.LLCOnly, policy.MEMOnly, policy.MEMLLC}
}

// Fig10Result holds the synthetic benchmark sweep.
type Fig10Result struct {
	Config   Config
	Policies []policy.Policy
	Cells    []Cell // parallel to Policies
}

// RunFig10 executes the synthetic benchmark under each policy, up to
// `workers` cells concurrently (results are identical at any value).
func RunFig10(mach *Machine, cfg Config, params workload.Params, repeats, workers int) (*Fig10Result, error) {
	res := &Fig10Result{Config: cfg, Policies: Fig10Policies()}
	cells, err := gather(len(res.Policies), workers, func(i int) (Cell, error) {
		return RunRepeated(mach, RunSpec{Workload: workload.Synthetic(), Config: cfg,
			Policy: res.Policies[i], Params: params}, repeats)
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	return res, nil
}

// WriteTable prints Fig. 10 as text: execution time per policy, plus
// the relative saving of MEM+LLC over buddy.
func (r *Fig10Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Fig. 10 — synthetic benchmark execution time (%s)\n", r.Config.Name)
	fmt.Fprintf(w, "%-14s %15s %15s %15s %10s\n", "policy", "mean cycles", "min", "max", "vs buddy")
	// base is the buddy runtime; if it were ever missing (zero),
	// PercentChange poisons the column with NaN rather than printing a
	// plausible 0% — see the stats package's baseline convention.
	base := r.Cells[0].Runtime.Mean
	for i, p := range r.Policies {
		c := r.Cells[i]
		fmt.Fprintf(w, "%-14s %15.0f %15.0f %15.0f %+9.1f%%\n",
			p.String(), c.Runtime.Mean, c.Runtime.Min, c.Runtime.Max,
			stats.PercentChange(base, c.Runtime.Mean))
	}
}

// BestOtherPolicies are the schemes pooled into the paper's "other
// best coloring solution" bars of Figs. 11-14.
func BestOtherPolicies() []policy.Policy {
	return []policy.Policy{policy.MEMOnly, policy.LLCOnly, policy.MEMLLCPart, policy.LLCMEMPart}
}

// SuiteRow is one (workload, configuration) row of Figs. 11 and 12.
type SuiteRow struct {
	Workload string
	Config   string
	// Buddy, BPM, MEMLLC are the three fixed bars; Other is the
	// best (lowest mean runtime) of BestOtherPolicies.
	Buddy, BPM, MEMLLC, Other Cell
	OtherPolicy               policy.Policy
}

// NormRuntime returns a bar's mean runtime normalized to buddy.
func (r *SuiteRow) NormRuntime(c Cell) float64 {
	return stats.NormRatio(c.Runtime.Mean, r.Buddy.Runtime.Mean)
}

// NormIdle returns a bar's mean total idle normalized to buddy.
func (r *SuiteRow) NormIdle(c Cell) float64 {
	return stats.NormRatio(c.Idle.Mean, r.Buddy.Idle.Mean)
}

// SuiteResult holds the full benchmark matrix behind Figs. 11 and 12.
type SuiteResult struct {
	Rows []SuiteRow
	// Ops counts engine ops across every cell simulated for the
	// matrix, including the "other best" candidates that lose the
	// comparison (perf accounting).
	Ops uint64
}

// RunSuite executes the benchmark suite across the given
// configurations, producing the data behind Figs. 11 (runtime) and
// 12 (idle time).
func RunSuite(mach *Machine, loads []workload.Workload, cfgs []Config,
	params workload.Params, repeats int) (*SuiteResult, error) {
	return RunSuiteParallel(mach, loads, cfgs, params, repeats, 1)
}

// RunSuiteParallel is RunSuite with up to `workers` cells simulated
// concurrently through the shared scatter/gather runner. Every cell
// builds fully independent machine state, and the aged-zone prototype
// cache is mutex-guarded, so parallel execution produces bit-identical
// results to sequential execution — it only uses more host cores.
func RunSuiteParallel(mach *Machine, loads []workload.Workload, cfgs []Config,
	params workload.Params, repeats, workers int) (*SuiteResult, error) {
	type cellJob struct {
		row, slot int // slot: 0 buddy, 1 BPM, 2 MEMLLC, 3.. others
		spec      RunSpec
	}
	others := BestOtherPolicies()
	var jobs []cellJob
	out := &SuiteResult{}
	for _, cfg := range cfgs {
		for _, wl := range loads {
			r := len(out.Rows)
			out.Rows = append(out.Rows, SuiteRow{Workload: wl.Name, Config: cfg.Name})
			fixed := []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC}
			for slot, p := range append(fixed, others...) {
				jobs = append(jobs, cellJob{row: r, slot: slot,
					spec: RunSpec{Workload: wl, Config: cfg, Policy: p, Params: params}})
			}
		}
	}

	cells, err := gather(len(jobs), workers, func(i int) (Cell, error) {
		c, err := RunRepeated(mach, jobs[i].spec, repeats)
		if err != nil {
			return c, fmt.Errorf("bench: cell %s/%s/%s: %w",
				jobs[i].spec.Workload.Name, jobs[i].spec.Config.Name, jobs[i].spec.Policy, err)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	// Merge in canonical (index) order: the "other best" winner is a
	// pure fold over the fixed slot order, so it cannot depend on
	// which goroutine finished first.
	for i, j := range jobs {
		out.Ops += cells[i].Ops
		row := &out.Rows[j.row]
		switch j.slot {
		case 0:
			row.Buddy = cells[i]
		case 1:
			row.BPM = cells[i]
		case 2:
			row.MEMLLC = cells[i]
		default:
			p := others[j.slot-3]
			if j.slot == 3 || cells[i].Runtime.Mean < row.Other.Runtime.Mean {
				row.Other, row.OtherPolicy = cells[i], p
			}
		}
	}
	return out, nil
}

// Row finds a row by workload and configuration name.
func (s *SuiteResult) Row(workloadName, configName string) (SuiteRow, bool) {
	for _, r := range s.Rows {
		if r.Workload == workloadName && r.Config == configName {
			return r, true
		}
	}
	return SuiteRow{}, false
}

// WriteRuntimeTable prints the Fig. 11 matrix: runtimes normalized to
// buddy.
func (s *SuiteResult) WriteRuntimeTable(w io.Writer) {
	fmt.Fprintln(w, "Fig. 11 — benchmark runtime normalized to buddy")
	s.writeNormTable(w, func(r *SuiteRow, c Cell) float64 { return r.NormRuntime(c) })
}

// WriteIdleTable prints the Fig. 12 matrix: total idle time
// normalized to buddy.
func (s *SuiteResult) WriteIdleTable(w io.Writer) {
	fmt.Fprintln(w, "Fig. 12 — total idle time normalized to buddy")
	s.writeNormTable(w, func(r *SuiteRow, c Cell) float64 { return r.NormIdle(c) })
}

func (s *SuiteResult) writeNormTable(w io.Writer, norm func(*SuiteRow, Cell) float64) {
	fmt.Fprintf(w, "%-20s %-13s %7s %7s %8s %8s %s\n",
		"config", "benchmark", "buddy", "BPM", "MEM+LLC", "other", "(other policy)")
	for i := range s.Rows {
		r := &s.Rows[i]
		fmt.Fprintf(w, "%-20s %-13s %7.3f %7.3f %8.3f %8.3f (%s)\n",
			r.Config, r.Workload,
			norm(r, r.Buddy), norm(r, r.BPM), norm(r, r.MEMLLC), norm(r, r.Other),
			r.OtherPolicy)
	}
}

// PerThreadResult holds Figs. 13 and 14: per-thread runtime and idle
// under each policy for one workload/config.
type PerThreadResult struct {
	Workload string
	Config   Config
	Policies []policy.Policy
	// Runtime[i][t] is thread t's parallel-section runtime under
	// Policies[i]; Idle likewise.
	Runtime [][]clock.Dur
	Idle    [][]clock.Dur
	// Ops counts engine ops across the policy runs (perf accounting).
	Ops uint64
}

// RunPerThread executes one workload/config under the given policies
// — up to `workers` concurrently — and records per-thread vectors
// (single run; the paper's per-thread figures are representative
// runs).
func RunPerThread(mach *Machine, wl workload.Workload, cfg Config,
	policies []policy.Policy, params workload.Params, workers int) (*PerThreadResult, error) {
	out := &PerThreadResult{Workload: wl.Name, Config: cfg, Policies: policies}
	ms, err := gather(len(policies), workers, func(i int) (RunMetrics, error) {
		return Run(mach, RunSpec{Workload: wl, Config: cfg, Policy: policies[i], Params: params})
	})
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		out.Runtime = append(out.Runtime, m.ThreadRuntime)
		out.Idle = append(out.Idle, m.ThreadIdle)
		out.Ops += m.Ops
	}
	return out, nil
}

// Spread returns (max-min)/... for a per-thread vector: the paper's
// imbalance measure (difference between slowest and fastest thread).
func Spread(v []clock.Dur) clock.Dur {
	if len(v) == 0 {
		return 0
	}
	lo, hi := v[0], v[0]
	for _, d := range v {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return hi - lo
}

// MaxOf returns the slowest thread's value.
func MaxOf(v []clock.Dur) clock.Dur {
	var m clock.Dur
	for _, d := range v {
		if d > m {
			m = d
		}
	}
	return m
}

// WriteTables prints Figs. 13 and 14 as per-thread listings.
func (r *PerThreadResult) WriteTables(w io.Writer) {
	fmt.Fprintf(w, "Fig. 13 — per-thread runtime, %s (%s)\n", r.Workload, r.Config.Name)
	r.writeVec(w, r.Runtime)
	fmt.Fprintf(w, "Fig. 14 — per-thread idle time, %s (%s)\n", r.Workload, r.Config.Name)
	r.writeVec(w, r.Idle)
}

func (r *PerThreadResult) writeVec(w io.Writer, vecs [][]clock.Dur) {
	fmt.Fprintf(w, "%-14s", "policy")
	for t := 0; t < r.Config.Threads(); t++ {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("t%d", t))
	}
	fmt.Fprintf(w, " %9s\n", "max-min")
	for i, p := range r.Policies {
		fmt.Fprintf(w, "%-14s", p.String())
		for _, d := range vecs[i] {
			fmt.Fprintf(w, " %9d", d)
		}
		fmt.Fprintf(w, " %9d\n", Spread(vecs[i]))
	}
}

// SortPoliciesForDisplay orders policies as in the paper's legends.
func SortPoliciesForDisplay(ps []policy.Policy) {
	order := map[policy.Policy]int{
		policy.Buddy: 0, policy.BPM: 1, policy.MEMLLC: 2,
		policy.MEMOnly: 3, policy.LLCOnly: 4, policy.MEMLLCPart: 5, policy.LLCMEMPart: 6,
	}
	sort.Slice(ps, func(i, j int) bool { return order[ps[i]] < order[ps[j]] })
}

// DetailRow is one policy's full diagnostics for a workload/config.
type DetailRow struct {
	Policy policy.Policy
	Cell   Cell
}

// DetailResult compares every coloring policy on one cell, with the
// memory-system diagnostics that explain the differences.
type DetailResult struct {
	Workload string
	Config   Config
	Rows     []DetailRow
}

// RunDetail executes one workload/config under every policy, up to
// `workers` cells concurrently.
func RunDetail(mach *Machine, wl workload.Workload, cfg Config,
	params workload.Params, repeats, workers int) (*DetailResult, error) {
	out := &DetailResult{Workload: wl.Name, Config: cfg}
	pols := policy.All()
	cells, err := gather(len(pols), workers, func(i int) (Cell, error) {
		return RunRepeated(mach, RunSpec{Workload: wl, Config: cfg, Policy: pols[i], Params: params}, repeats)
	})
	if err != nil {
		return nil, err
	}
	for i, p := range pols {
		out.Rows = append(out.Rows, DetailRow{Policy: p, Cell: cells[i]})
	}
	return out, nil
}

// WriteTable prints the per-policy breakdown.
func (d *DetailResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Policy detail — %s (%s)\n", d.Workload, d.Config.Name)
	fmt.Fprintf(w, "%-14s %9s %9s %8s %8s %8s\n",
		"policy", "runtime", "idle", "remote%", "L3miss%", "rowconf%")
	base := d.Rows[0].Cell
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%-14s %9.3f %9.3f %7.1f%% %7.1f%% %7.1f%%\n",
			r.Policy.String(),
			stats.NormRatio(r.Cell.Runtime.Mean, base.Runtime.Mean),
			stats.NormRatio(r.Cell.Idle.Mean, base.Idle.Mean),
			r.Cell.Last.RemoteDRAMFrac*100,
			r.Cell.Last.L3MissRate*100,
			r.Cell.Last.RowConflictFrac*100)
	}
}
