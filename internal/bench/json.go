package bench

import (
	"encoding/json"
	"io"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/stats"
)

// JSON exports of every experiment (`tintbench -format json`). The
// result structs hold workload build functions and cannot be
// marshaled directly, so each export flattens into a plain view with
// the same fields as the CSV export, plus simulated-seconds
// conversions for consumers that do not want to carry clock.Hz
// around. Field order is fixed by the view structs and map-free, so
// the output is byte-stable across runs and -parallel values.

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

type summaryJSON struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean_cycles"`
	Min    float64 `json:"min_cycles"`
	Max    float64 `json:"max_cycles"`
	StdDev float64 `json:"stddev_cycles"`
	MeanS  float64 `json:"mean_seconds"`
}

func summaryView(s stats.Summary) summaryJSON {
	return summaryJSON{N: s.N, Mean: s.Mean, Min: s.Min, Max: s.Max,
		StdDev: s.StdDev, MeanS: clock.Seconds(clock.Dur(s.Mean))}
}

type cellJSON struct {
	Policy          string      `json:"policy"`
	Runtime         summaryJSON `json:"runtime"`
	Idle            summaryJSON `json:"idle"`
	Ops             uint64      `json:"engine_ops"`
	RemoteDRAMFrac  float64     `json:"remote_frac"`
	L3MissRate      float64     `json:"l3_miss_rate"`
	RowConflictFrac float64     `json:"row_conflict_frac"`
}

func cellView(p string, c Cell) cellJSON {
	return cellJSON{
		Policy:          p,
		Runtime:         summaryView(c.Runtime),
		Idle:            summaryView(c.Idle),
		Ops:             c.Ops,
		RemoteDRAMFrac:  c.Last.RemoteDRAMFrac,
		L3MissRate:      c.Last.L3MissRate,
		RowConflictFrac: c.Last.RowConflictFrac,
	}
}

// WriteJSON exports the latency primer.
func (r *LatencyResult) WriteJSON(w io.Writer) error {
	type row struct {
		Node   int     `json:"node"`
		Hops   int     `json:"hops"`
		Cycles float64 `json:"cycles_per_line"`
	}
	out := struct {
		Experiment string `json:"experiment"`
		Core       int    `json:"core"`
		Rows       []row  `json:"rows"`
	}{Experiment: "latency", Core: int(r.Core)}
	for _, lr := range r.Rows {
		out.Rows = append(out.Rows, row{lr.Node, lr.Hops, lr.Cycles})
	}
	return writeJSON(w, out)
}

// WriteJSON exports the Fig. 10 sweep.
func (r *Fig10Result) WriteJSON(w io.Writer) error {
	out := struct {
		Experiment string     `json:"experiment"`
		Config     string     `json:"config"`
		Cells      []cellJSON `json:"cells"`
	}{Experiment: "fig10", Config: r.Config.Name}
	for i, p := range r.Policies {
		out.Cells = append(out.Cells, cellView(p.String(), r.Cells[i]))
	}
	return writeJSON(w, out)
}

// WriteJSON exports the suite matrix behind Figs. 11 and 12.
func (s *SuiteResult) WriteJSON(w io.Writer) error {
	type bar struct {
		cellJSON
		RuntimeNorm float64 `json:"runtime_norm"`
		IdleNorm    float64 `json:"idle_norm"`
	}
	type row struct {
		Config   string `json:"config"`
		Workload string `json:"workload"`
		Bars     []bar  `json:"bars"`
	}
	out := struct {
		Experiment string `json:"experiment"`
		Ops        uint64 `json:"engine_ops"`
		Rows       []row  `json:"rows"`
	}{Experiment: "suite", Ops: s.Ops}
	for i := range s.Rows {
		r := &s.Rows[i]
		jr := row{Config: r.Config, Workload: r.Workload}
		for _, b := range []struct {
			name string
			cell Cell
		}{
			{"buddy", r.Buddy},
			{"BPM", r.BPM},
			{"MEM+LLC", r.MEMLLC},
			{r.OtherPolicy.String(), r.Other},
		} {
			jr.Bars = append(jr.Bars, bar{
				cellJSON:    cellView(b.name, b.cell),
				RuntimeNorm: r.NormRuntime(b.cell),
				IdleNorm:    r.NormIdle(b.cell),
			})
		}
		out.Rows = append(out.Rows, jr)
	}
	return writeJSON(w, out)
}

// WriteJSON exports the per-thread vectors behind Figs. 13 and 14.
func (r *PerThreadResult) WriteJSON(w io.Writer) error {
	type vec struct {
		Policy  string   `json:"policy"`
		Runtime []uint64 `json:"thread_runtime_cycles"`
		Idle    []uint64 `json:"thread_idle_cycles"`
	}
	out := struct {
		Experiment string `json:"experiment"`
		Workload   string `json:"workload"`
		Config     string `json:"config"`
		Ops        uint64 `json:"engine_ops"`
		Policies   []vec  `json:"policies"`
	}{Experiment: "perthread", Workload: r.Workload, Config: r.Config.Name, Ops: r.Ops}
	for i, p := range r.Policies {
		v := vec{Policy: p.String()}
		for _, d := range r.Runtime[i] {
			v.Runtime = append(v.Runtime, uint64(d))
		}
		for _, d := range r.Idle[i] {
			v.Idle = append(v.Idle, uint64(d))
		}
		out.Policies = append(out.Policies, v)
	}
	return writeJSON(w, out)
}

// WriteJSON exports the per-policy detail table.
func (d *DetailResult) WriteJSON(w io.Writer) error {
	out := struct {
		Experiment string     `json:"experiment"`
		Workload   string     `json:"workload"`
		Config     string     `json:"config"`
		Cells      []cellJSON `json:"cells"`
	}{Experiment: "detail", Workload: d.Workload, Config: d.Config.Name}
	for _, row := range d.Rows {
		out.Cells = append(out.Cells, cellView(row.Policy.String(), row.Cell))
	}
	return writeJSON(w, out)
}

// WriteJSON exports a sensitivity sweep.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	type point struct {
		Value     float64     `json:"value"`
		Buddy     summaryJSON `json:"buddy_runtime"`
		MEMLLC    summaryJSON `json:"memllc_runtime"`
		RatioMean float64     `json:"ratio_mean"`
	}
	out := struct {
		Experiment string  `json:"experiment"`
		Param      string  `json:"param"`
		Workload   string  `json:"workload"`
		Config     string  `json:"config"`
		Ops        uint64  `json:"engine_ops"`
		Points     []point `json:"points"`
	}{Experiment: "sweep", Param: string(r.Param), Workload: r.Workload, Config: r.Config.Name, Ops: r.Ops}
	for _, p := range r.Points {
		out.Points = append(out.Points, point{
			Value: p.Value, Buddy: summaryView(p.Buddy),
			MEMLLC: summaryView(p.MEMLLC), RatioMean: p.RatioMean,
		})
	}
	return writeJSON(w, out)
}

// WriteJSON exports the chaos matrix.
func (c *ChaosResult) WriteJSON(w io.Writer) error {
	type row struct {
		Workload        string  `json:"workload"`
		Plan            string  `json:"plan"`
		OOM             bool    `json:"oom"`
		Runtime         uint64  `json:"runtime_cycles"`
		VsClean         float64 `json:"vs_clean"`
		DegradedBorrow  uint64  `json:"degraded_borrow"`
		DegradedLocal   uint64  `json:"degraded_local_uncolored"`
		DegradedRemote  uint64  `json:"degraded_remote"`
		DegradedRate    float64 `json:"degraded_rate"`
		Loans           int     `json:"loans_outstanding"`
		LoansReclaimed  uint64  `json:"loans_reclaimed"`
		ParkedReclaimed uint64  `json:"parked_reclaimed"`
		Injected        uint64  `json:"injected"`
		SqueezeDenials  uint64  `json:"squeeze_denials"`
		Audits          int     `json:"audits"`
		RemoteFrac      float64 `json:"remote_frac"`
		L3MissRate      float64 `json:"l3_miss_rate"`
		RowConflictFrac float64 `json:"row_conflict_frac"`
	}
	out := struct {
		Experiment string `json:"experiment"`
		Config     string `json:"config"`
		Policy     string `json:"policy"`
		Rows       []row  `json:"rows"`
	}{Experiment: "chaos", Config: c.Config.Name, Policy: c.Policy}
	for i := range c.Rows {
		r := &c.Rows[i]
		vs := c.VsClean(r)
		if r.OOM {
			// NaN would (deliberately) fail the JSON encoder; the oom
			// flag carries the "no comparable runtime" signal instead.
			vs = 0
		}
		out.Rows = append(out.Rows, row{
			Workload: r.Workload, Plan: r.Plan, OOM: r.OOM,
			Runtime: uint64(r.Metrics.Runtime), VsClean: vs,
			DegradedBorrow: r.Kern.DegradedAllocs[0],
			DegradedLocal:  r.Kern.DegradedAllocs[1],
			DegradedRemote: r.Kern.DegradedAllocs[2],
			DegradedRate:   r.DegradedRate(),
			Loans:          r.Loans,
			LoansReclaimed: r.Kern.LoansReclaimed, ParkedReclaimed: r.Kern.ParkedReclaimed,
			Injected: r.Inj.TotalInjected(), SqueezeDenials: r.Inj.SqueezeDenials,
			Audits:     r.Audits,
			RemoteFrac: r.Metrics.RemoteDRAMFrac, L3MissRate: r.Metrics.L3MissRate,
			RowConflictFrac: r.Metrics.RowConflictFrac,
		})
	}
	return writeJSON(w, out)
}

// WriteJSON exports the adaptive-vs-static matrix.
func (a *AdaptiveResult) WriteJSON(w io.Writer) error {
	type switchJSON struct {
		Phase  string `json:"phase"`
		Thread int    `json:"thread"`
		From   string `json:"from"`
		To     string `json:"to"`
	}
	type row struct {
		Policy        string       `json:"policy"`
		Plan          string       `json:"plan"`
		OOM           bool         `json:"oom"`
		Runtime       uint64       `json:"runtime"`
		DegradedTotal uint64       `json:"degraded_total"`
		Loans         int          `json:"loans_outstanding"`
		Switches      []switchJSON `json:"switches"`
		Repolicies    uint64       `json:"repolicies"`
		LoansMoved    int          `json:"loans_moved"`
		LoansFailed   int          `json:"loans_failed"`
		PagesMoved    int          `json:"pages_moved"`
		PagesFailed   int          `json:"pages_failed"`
		CompactCost   uint64       `json:"compact_cost"`
		RemoteFrac    float64      `json:"remote_frac"`
		L3MissRate    float64      `json:"l3_miss_rate"`
		Audits        int          `json:"audits"`
	}
	out := struct {
		Experiment string `json:"experiment"`
		Config     string `json:"config"`
		Workload   string `json:"workload"`
		Rows       []row  `json:"rows"`
	}{Experiment: "adaptive", Config: a.Config.Name, Workload: a.Workload}
	for i := range a.Rows {
		r := &a.Rows[i]
		jr := row{
			Policy: r.Policy, Plan: r.Plan, OOM: r.OOM,
			Runtime:       uint64(r.Metrics.Runtime),
			DegradedTotal: r.DegradedTotal(),
			Loans:         r.Loans,
			Repolicies:    r.Repolicies,
			LoansMoved:    r.Compact.LoansMoved, LoansFailed: r.Compact.LoansFailed,
			PagesMoved: r.Compact.PagesMoved, PagesFailed: r.Compact.PagesFailed,
			CompactCost: uint64(r.CompactCost),
			RemoteFrac:  r.Metrics.RemoteDRAMFrac, L3MissRate: r.Metrics.L3MissRate,
			Audits: r.Audits,
		}
		for _, s := range r.Switches {
			jr.Switches = append(jr.Switches, switchJSON(s))
		}
		out.Rows = append(out.Rows, jr)
	}
	return writeJSON(w, out)
}
