package bench

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/fault"
	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// The adaptive policy engine harness (DESIGN.md Sec. 15): a
// heterogeneous workload runs once per static policy and once under
// the online engine — classifier decisions at every phase barrier,
// Task.Repolicy switches debounced by hysteresis, and the budgeted
// compaction daemon migrating loans and misplaced pages home. Every
// cell runs with the invariant auditor (check 7 included) wired to
// every barrier, twice, compared field-for-field — the same
// determinism contract the chaos harness enforces.

// Adaptive experiment sizing. The machine is deliberately small and
// all threads share one node: per-thread color capacity is what the
// streamers must overflow, and the numbers below put the three
// heteromix roles on three different sides of the classifier's
// thresholds at ANY params scale (the workload knobs are absolute).
const (
	adaptiveMemBytes    = 64 << 20 // 16 MiB per node (the PCI decode minimum); node 0 is the arena
	adaptiveStreamBytes = 8 << 20  // per-streamer footprint: 2048 pages
	adaptiveEpochs      = 6
	adaptiveConfig      = "4_threads_1_nodes"
	// AdaptiveCompactBudget is the compaction daemon's per-task,
	// per-barrier page-move budget.
	AdaptiveCompactBudget = 64
)

// AdaptiveOptions configures one adaptive cell.
type AdaptiveOptions struct {
	Workload workload.Workload
	Config   Config
	Params   workload.Params
	// Initial is the policy every task starts under (the static
	// baseline the engine departs from).
	Initial policy.Policy
	// Adaptive installs the barrier-hook engine; false runs the
	// workload as a plain static cell.
	Adaptive bool
	// CompactBudget is the per-task page-move budget per barrier
	// (<= 0 disables compaction).
	CompactBudget int
	// Lag is the hysteresis debounce (0 = policy.DefaultHysteresisLag).
	Lag int
	// Plan, when non-nil, wires the named fault plan into the run.
	Plan *fault.Plan
}

// Switch records one released policy transition, for the report and
// the determinism comparison.
type Switch struct {
	Phase  string
	Thread int
	From   string
	To     string
}

// AdaptiveRow is one cell of the adaptive matrix.
type AdaptiveRow struct {
	Policy  string // static policy name, or "adaptive(<initial>)"
	Plan    string // "clean" or the fault plan name
	OOM     bool
	Metrics RunMetrics
	Kern    kernel.Stats
	Loans   int
	Audits  int
	// Adaptive engine outcomes (zero for static rows).
	Switches    []Switch
	Repolicies  uint64
	CompactCost clock.Dur
	Compact     kernel.CompactStats
}

// DegradedTotal sums the row's ladder allocations across rungs.
func (r *AdaptiveRow) DegradedTotal() uint64 {
	var t uint64
	for _, n := range r.Kern.DegradedAllocs {
		t += n
	}
	return t
}

// adaptiveDriver is the per-run state of the online engine: one
// hysteresis tracker and one feature-delta snapshot per thread.
type adaptiveDriver struct {
	k       *kernel.Kernel
	e       *engine.Engine
	threads []engine.Thread
	cores   []topology.CoreID
	base    []policy.Assignment // full MEM+LLC plan; switches apply subsets
	bankCap []uint64            // frame supply of each thread's bank colors
	llcCap  []uint64            // cache pages behind each thread's LLC colors
	hyst    []*policy.Hysteresis
	budget  int

	prevFaults   []uint64
	prevDegraded []uint64
	prevCore     []mem.CoreStats

	row *AdaptiveRow
}

// subsetFor projects the thread's full MEM+LLC assignment onto the
// classifier's decision. Subsets of a disjoint plan stay disjoint, so
// switching threads independently can never create a color conflict.
// Every policy policy.Classify can emit needs a case here — the
// classifier-row rule (CONTRIBUTING.md).
func subsetFor(p policy.Policy, full policy.Assignment) (policy.Assignment, error) {
	switch p {
	case policy.Buddy:
		return policy.Assignment{}, nil
	case policy.MEMOnly:
		return policy.Assignment{BankColors: full.BankColors}, nil
	case policy.LLCOnly:
		return policy.Assignment{LLCColors: full.LLCColors}, nil
	case policy.MEMLLC:
		return full, nil
	}
	return policy.Assignment{}, fmt.Errorf("bench: classifier emitted %s, which has no assignment subset", p)
}

// barrier is the engine's phase-barrier hook: sample, classify,
// debounce, repolicy, compact. The returned cost (preferred-path
// allocations plus the per-page copy charge) extends the barrier, so
// daemon work is paid for by the program it serves.
func (d *adaptiveDriver) barrier(phase string) (clock.Dur, error) {
	ms := d.e.Mem()
	for i, th := range d.threads {
		t := th.Task
		faults, degraded := t.Faults(), t.Degraded()
		cs := ms.CoreStats(d.cores[i])
		dAcc := cs.Accesses - d.prevCore[i].Accesses
		dDRAM := cs.DRAMReads - d.prevCore[i].DRAMReads
		dRemote := cs.RemoteDRAM - d.prevCore[i].RemoteDRAM
		dFaults := faults - d.prevFaults[i]
		dDegraded := degraded - d.prevDegraded[i]
		sample := policy.TaskSample{
			FootprintPages:    t.ResidentPages(),
			BankCapacityPages: d.bankCap[i],
			LLCCapacityPages:  d.llcCap[i],
			Accesses:          dAcc,
		}
		if dFaults > 0 {
			sample.LoanRate = float64(dDegraded) / float64(dFaults)
		}
		if dAcc > 0 {
			sample.LLCMissRate = float64(dDRAM) / float64(dAcc)
		}
		if dDRAM > 0 {
			sample.RemoteFrac = float64(dRemote) / float64(dDRAM)
		}
		d.prevFaults[i], d.prevDegraded[i], d.prevCore[i] = faults, degraded, cs

		decision, confident := policy.Classify(sample)
		if !confident {
			continue
		}
		from := d.hyst[i].Current()
		if !d.hyst[i].Observe(decision) {
			continue
		}
		asn, err := subsetFor(decision, d.base[i])
		if err != nil {
			return 0, err
		}
		if err := t.Repolicy(asn.BankColors, asn.LLCColors); err != nil {
			return 0, fmt.Errorf("bench: adaptive repolicy thread %d -> %s: %w", i, decision, err)
		}
		d.row.Switches = append(d.row.Switches, Switch{
			Phase: phase, Thread: i, From: from.String(), To: decision.String(),
		})
	}
	// Compaction daemon: one budgeted step per task, after the
	// decisions so freshly released colors are already reconciled.
	var cost clock.Dur
	if d.budget > 0 {
		for _, th := range d.threads {
			st := th.Task.CompactStep(d.budget)
			cost += st.Cost
			d.row.Compact.LoansMoved += st.LoansMoved
			d.row.Compact.LoansFailed += st.LoansFailed
			d.row.Compact.PagesScanned += st.PagesScanned
			d.row.Compact.PagesMoved += st.PagesMoved
			d.row.Compact.PagesFailed += st.PagesFailed
		}
	}
	d.row.CompactCost += cost
	return cost, nil
}

// RunAdaptive executes one cell. The machine's kernel config decides
// reference mode: a DisableAdaptive kernel refuses Repolicy, so
// opts.Adaptive=true against it fails loudly rather than silently
// running static.
func RunAdaptive(mach *Machine, opts AdaptiveOptions) (AdaptiveRow, error) {
	name := opts.Initial.String()
	if opts.Adaptive {
		name = fmt.Sprintf("adaptive(%s)", opts.Initial)
	}
	row := AdaptiveRow{Policy: name, Plan: "clean"}
	spec := RunSpec{
		Workload: opts.Workload,
		Config:   opts.Config,
		Policy:   opts.Initial,
		Params:   opts.Params,
	}
	var (
		kk      *kernel.Kernel
		wireErr error
	)
	m, err := RunInstrumented(mach, spec, func(k *kernel.Kernel, e *engine.Engine) {
		kk = k
		if opts.Plan != nil {
			row.Plan = opts.Plan.Name
			inj := fault.New(chaosSeed(spec.Params.Seed, opts.Plan.Name), *opts.Plan)
			if werr := inj.Wire(k); werr != nil {
				wireErr = werr
				return
			}
		}
		e.SetAuditHook(func() error {
			row.Audits++
			return invariant.Audit(k).Err()
		})
		if !opts.Adaptive {
			return
		}
		threads := e.Threads()
		base, perr := policy.Plan(policy.MEMLLC, mach.Mapping, mach.Topo, opts.Config.Cores)
		if perr != nil {
			wireErr = perr
			return
		}
		lag := opts.Lag
		if lag == 0 {
			lag = policy.DefaultHysteresisLag
		}
		// Capacity features: the frame supply behind each thread's
		// bank-color claim and the cache pages behind its LLC-color
		// claim, so the classifier can refuse colors that cannot hold
		// the task's working set.
		perColor := make([]uint64, mach.Mapping.NumBankColors())
		for f := phys.Frame(0); uint64(f) < mach.Mapping.Frames(); f++ {
			perColor[mach.Mapping.FrameBankColor(f)]++
		}
		llcPerColor := mach.MemCfg.L3.SizeBytes / phys.PageSize / uint64(mach.Mapping.NumLLCColors())
		bankCap := make([]uint64, len(threads))
		llcCap := make([]uint64, len(threads))
		for i := range base {
			for _, bc := range base[i].BankColors {
				bankCap[i] += perColor[bc]
			}
			llcCap[i] = llcPerColor * uint64(len(base[i].LLCColors))
		}
		d := &adaptiveDriver{
			k: k, e: e, threads: threads, cores: opts.Config.Cores,
			base: base, bankCap: bankCap, llcCap: llcCap,
			budget: opts.CompactBudget, row: &row,
			prevFaults:   make([]uint64, len(threads)),
			prevDegraded: make([]uint64, len(threads)),
			prevCore:     make([]mem.CoreStats, len(threads)),
			hyst:         make([]*policy.Hysteresis, len(threads)),
		}
		for i := range threads {
			h, herr := policy.NewHysteresis(opts.Initial, lag)
			if herr != nil {
				wireErr = herr
				return
			}
			d.hyst[i] = h
		}
		e.SetBarrierHook(d.barrier)
	})
	if wireErr != nil {
		return row, wireErr
	}
	if kk != nil {
		row.Kern = kk.Stats()
		row.Loans = kk.Loans()
		row.Repolicies = row.Kern.Repolicies
	}
	switch {
	case err == nil:
		row.Metrics = m
	case opts.Plan != nil && errors.Is(err, kernel.ErrNoMemory):
		row.OOM = true
		row.Metrics = RunMetrics{}
	default:
		return row, err
	}
	return row, nil
}

// runAdaptiveCellTwice enforces the determinism contract: the cell
// executes twice on fresh machine state and must be byte-identical.
func runAdaptiveCellTwice(mach *Machine, opts AdaptiveOptions) (AdaptiveRow, error) {
	first, err := RunAdaptive(mach, opts)
	if err != nil {
		return first, err
	}
	again, err := RunAdaptive(mach, opts)
	if err != nil {
		return first, err
	}
	if !reflect.DeepEqual(first, again) {
		return first, fmt.Errorf("bench: adaptive cell %s/%s is nondeterministic: %+v != %+v",
			first.Policy, first.Plan, first, again)
	}
	return first, nil
}

// AdaptiveResult is the full adaptive-vs-static matrix on one
// machine, workload and configuration.
type AdaptiveResult struct {
	Config   Config
	Workload string
	Rows     []AdaptiveRow // statics in staticPolicies order, then adaptive
}

// staticPolicies are the baselines the engine must beat — the
// classifier's whole output domain run as fixed policies.
func staticPolicies() []policy.Policy {
	return []policy.Policy{policy.Buddy, policy.MEMOnly, policy.LLCOnly, policy.MEMLLC}
}

// NewAdaptiveMachine builds the harness's dedicated machine: small
// enough that the heteromix streamers overflow every per-thread color
// budget, with reference mode (DisableAdaptive) selectable.
func NewAdaptiveMachine(disable bool) (*Machine, error) {
	mach, err := NewMachine(MachineOptions{MemBytes: adaptiveMemBytes})
	if err != nil {
		return nil, err
	}
	// Age the machine harder than the evaluation default: the adaptive
	// engine's pitch is long-lived workloads on a kernel whose buddy
	// lists have decayed, where an uncolored allocation lands remote
	// one time in four. Colored placement is immune to the decay —
	// that asymmetry is exactly what the colored early epochs buy.
	mach.KernCfg.BuddyRemoteFrac = 0.25
	mach.KernCfg.DisableAdaptive = disable
	return mach, nil
}

// AdaptiveWorkload is the harness's heteromix instance (absolute
// knobs, so the capacity pressure is independent of -scale).
func AdaptiveWorkload() workload.Workload {
	return workload.HeteroMix(workload.HeteroSpec{
		StreamBytes: adaptiveStreamBytes,
		Epochs:      adaptiveEpochs,
	})
}

// RunAdaptiveMatrix runs the showcase: heteromix under every static
// policy and under the adaptive engine, each cell twice (determinism)
// with the auditor at every barrier, plus one chaos rerun of the
// adaptive cell under `plan` when non-nil.
func RunAdaptiveMatrix(mach *Machine, params workload.Params, plan *fault.Plan) (*AdaptiveResult, error) {
	cfg, err := ConfigByName(mach.Topo, adaptiveConfig)
	if err != nil {
		return nil, err
	}
	wl := AdaptiveWorkload()
	out := &AdaptiveResult{Config: cfg, Workload: wl.Name}
	for _, p := range staticPolicies() {
		row, err := runAdaptiveCellTwice(mach, AdaptiveOptions{
			Workload: wl, Config: cfg, Params: params, Initial: p,
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	// The adaptive row departs from static MEM — the paper's
	// per-program contract is the natural thing to launch under, and
	// the engine's job is to notice which threads it does not fit.
	adaptive := AdaptiveOptions{
		Workload: wl, Config: cfg, Params: params,
		Initial: policy.MEMOnly, Adaptive: true,
		CompactBudget: AdaptiveCompactBudget,
	}
	row, err := runAdaptiveCellTwice(mach, adaptive)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)
	if plan != nil {
		chaos := adaptive
		chaos.Plan = plan
		row, err := runAdaptiveCellTwice(mach, chaos)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AdaptiveRowByPolicy finds a clean row by its policy label.
func (a *AdaptiveResult) AdaptiveRowByPolicy(name string) *AdaptiveRow {
	for i := range a.Rows {
		if a.Rows[i].Policy == name && a.Rows[i].Plan == "clean" {
			return &a.Rows[i]
		}
	}
	return nil
}

// adaptiveRow finds the clean engine row, whatever its initial policy.
func (a *AdaptiveResult) adaptiveRow() *AdaptiveRow {
	for i := range a.Rows {
		if a.Rows[i].Plan == "clean" && strings.HasPrefix(a.Rows[i].Policy, "adaptive(") {
			return &a.Rows[i]
		}
	}
	return nil
}

// Check asserts the experiment's acceptance criteria: the adaptive
// row beats every static policy on suite runtime, and its ladder
// total undercuts static MEM (the paper's MEM+BANK contract).
func (a *AdaptiveResult) Check() error {
	ad := a.adaptiveRow()
	if ad == nil {
		return fmt.Errorf("bench: adaptive row missing")
	}
	if ad.OOM {
		return fmt.Errorf("bench: adaptive row OOMed")
	}
	for _, p := range staticPolicies() {
		st := a.AdaptiveRowByPolicy(p.String())
		if st == nil {
			return fmt.Errorf("bench: static %s row missing", p)
		}
		if st.OOM {
			return fmt.Errorf("bench: static %s row OOMed", p)
		}
		if ad.Metrics.Runtime >= st.Metrics.Runtime {
			return fmt.Errorf("bench: adaptive runtime %d does not beat static %s (%d)",
				ad.Metrics.Runtime, p, st.Metrics.Runtime)
		}
		if ad.Metrics.Ops != st.Metrics.Ops {
			return fmt.Errorf("bench: adaptive ops %d != static %s ops %d (engine work must be policy-invariant)",
				ad.Metrics.Ops, p, st.Metrics.Ops)
		}
	}
	mem := a.AdaptiveRowByPolicy(policy.MEMOnly.String())
	if ad.DegradedTotal() >= mem.DegradedTotal() {
		return fmt.Errorf("bench: adaptive degraded allocs %d not below static %s (%d)",
			ad.DegradedTotal(), policy.MEMOnly, mem.DegradedTotal())
	}
	if len(ad.Switches) == 0 {
		return fmt.Errorf("bench: adaptive run released no policy switches on a heterogeneous mix")
	}
	return nil
}

// WriteTable prints the adaptive matrix.
func (a *AdaptiveResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Adaptive — %s on %s\n", a.Workload, a.Config.Name)
	fmt.Fprintf(w, "%-18s %-12s %12s %8s %7s %7s %6s %6s %6s %6s %9s %7s %6s\n",
		"policy", "plan", "runtime", "degr", "loans", "switch",
		"lmv", "lfail", "pmv", "pfail", "cost", "remote%", "audits")
	for i := range a.Rows {
		r := &a.Rows[i]
		runtime := fmt.Sprintf("%d", r.Metrics.Runtime)
		if r.OOM {
			runtime = "OOM"
		}
		fmt.Fprintf(w, "%-18s %-12s %12s %8d %7d %7d %6d %6d %6d %6d %9d %6.1f%% %6d\n",
			r.Policy, r.Plan, runtime, r.DegradedTotal(), r.Loans,
			len(r.Switches), r.Compact.LoansMoved, r.Compact.LoansFailed,
			r.Compact.PagesMoved, r.Compact.PagesFailed,
			r.CompactCost, r.Metrics.RemoteDRAMFrac*100, r.Audits)
	}
	ad := a.adaptiveRow()
	if ad != nil && len(ad.Switches) > 0 {
		fmt.Fprintf(w, "\nPolicy switches (phase barrier, thread, from -> to)\n")
		for _, s := range ad.Switches {
			fmt.Fprintf(w, "  %-8s t%-2d %s -> %s\n", s.Phase, s.Thread, s.From, s.To)
		}
	}
}
