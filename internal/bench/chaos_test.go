package bench

import (
	"reflect"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/fault"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// The chaos harness's own contract: rows cover (workload × plans+1),
// the clean baseline is fault-free, plans that inject report it, and
// the auditor ran at least once per cell.
func TestRunChaos(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	plans := []fault.Plan{mustPlan(t, "refill-starve"), mustPlan(t, "pressure-storm")}
	r, err := RunChaos(mach, cfg, "MEM+LLC", []workload.Workload{workload.Synthetic()},
		plans, workload.Params{Seed: 3, Scale: 0.05}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(r.Rows))
	}
	clean := r.Rows[0]
	if clean.Plan != "clean" || clean.Inj.TotalInjected() != 0 || clean.DegradedTotal() != 0 {
		t.Errorf("clean baseline shows faults: %+v", clean)
	}
	if got := r.VsClean(&r.Rows[0]); got != 1 {
		t.Errorf("clean VsClean = %v, want 1", got)
	}
	starve := r.Rows[1]
	if starve.Plan != "refill-starve" {
		t.Fatalf("row 1 plan = %q", starve.Plan)
	}
	if starve.Inj.Injected[fault.SiteRefill] == 0 {
		t.Error("refill-starve injected nothing")
	}
	if starve.DegradedTotal() == 0 {
		t.Error("refill-starve never reached the degradation ladder")
	}
	for i := range r.Rows {
		if r.Rows[i].Audits == 0 {
			t.Errorf("row %d ran without a single invariant audit", i)
		}
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	for _, want := range []string{"refill-starve", "pressure-storm", "divergence impact"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func mustPlan(t *testing.T, name string) fault.Plan {
	t.Helper()
	p, err := fault.PlanByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// FuzzFaultPlan throws arbitrary fault plans at a small chaos cell
// and asserts the two properties no plan may break: the run is
// deterministic (two executions agree field-for-field), and the
// invariant auditor stays clean after every phase — errors other than
// the handled machine-wide OOM fail the target.
func FuzzFaultPlan(f *testing.F) {
	mach, err := NewMachine(MachineOptions{MemBytes: 1 << 30})
	if err != nil {
		f.Fatal(err)
	}
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int64(1), uint16(60), uint16(350), uint16(250), uint16(100), uint8(0), uint8(50), uint8(0))
	f.Add(int64(7), uint16(1000), uint16(0), uint16(0), uint16(0), uint8(3), uint8(0), uint8(2))
	f.Add(int64(42), uint16(0), uint16(1000), uint16(500), uint16(5000), uint8(1), uint8(99), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, pb, pr, pm, after uint16, limit, sfrac, snode uint8) {
		plan := fault.Plan{
			Name: "fuzz",
			Rules: []fault.Rule{
				{Site: fault.SiteBuddyAlloc, Node: -1, Permille: int(pb % 1001), After: uint64(after), Limit: uint64(limit)},
				{Site: fault.SiteRefill, Node: -1, Permille: int(pr % 1001)},
				{Site: fault.SiteMigrate, Node: -1, Permille: int(pm % 1001)},
			},
		}
		if frac := float64(sfrac%100) / 100; frac > 0 {
			plan.Squeezes = []fault.Squeeze{{Node: int(snode) % mach.Topo.Nodes(), Frac: frac}}
		}
		pol, err := policyByName("MEM+LLC")
		if err != nil {
			t.Fatal(err)
		}
		spec := RunSpec{
			Workload: workload.Synthetic(),
			Config:   cfg,
			Policy:   pol,
			Params:   workload.Params{Seed: seed, Scale: 0.02},
		}
		first, err := runChaosCell(mach, spec, &plan)
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		again, err := runChaosCell(mach, spec, &plan)
		if err != nil {
			t.Fatalf("plan %+v (second run): %v", plan, err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("nondeterministic under plan %+v:\n%+v\n%+v", plan, first, again)
		}
	})
}
