package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// Golden-file tests pin the exact rendered output of every tintbench
// format and the tintreport markdown. They serve two purposes: any
// accidental format change shows up as a reviewable diff, and —
// because the fixtures are committed — any nondeterminism anywhere in
// the simulator stack (scheduler, allocator iteration order, map
// ranging in a writer) breaks the build on the spot. Regenerate
// intentionally with:
//
//	go test ./internal/bench -run TestGolden -update
func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("%s drifted from golden file (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func goldenParams() workload.Params { return workload.Params{Seed: 1, Scale: 0.1} }

func TestGoldenLatency(t *testing.T) {
	mach := testMachine(t)
	r, err := RunLatency(mach, 0, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	sb.WriteString("\n")
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	sb.WriteString("\n")
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "latency.golden", sb.String())
}

func TestGoldenFig10(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunFig10(mach, cfg, goldenParams(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	sb.WriteString("\n")
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	sb.WriteString("\n")
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig10.golden", sb.String())
}

func TestGoldenSuite(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunSuiteParallel(mach, []workload.Workload{workload.Synthetic()},
		[]Config{cfg}, goldenParams(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.WriteRuntimeTable(&sb)
	sb.WriteString("\n")
	r.WriteIdleTable(&sb)
	sb.WriteString("\n")
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "suite.golden", sb.String())
}

func TestGoldenPerThread(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunPerThread(mach, workload.Synthetic(), cfg,
		[]policy.Policy{policy.Buddy, policy.MEMLLC}, goldenParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.WriteTables(&sb)
	sb.WriteString("\n")
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "perthread.golden", sb.String())
}

func TestGoldenSweep(t *testing.T) {
	r, err := RunSweep(SweepHopCycles, []float64{0, 50}, workload.Synthetic(),
		"4_threads_4_nodes", goldenParams(), 1, 1<<30, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.WriteTable(&sb)
	sb.WriteString("\n")
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep.golden", sb.String())
}

// The tintreport markdown renderer is pinned against a fabricated
// report so the golden does not depend on a full validation run.
func TestGoldenReportMarkdown(t *testing.T) {
	rep := &ValidationReport{Results: []ClaimResult{
		{ID: "latency", Claim: "local is faster than remote",
			Expected: "3-hop >= 1.3x local", Measured: "local 80.0, 3-hop 140.0 (1.75x)", Pass: true},
		{ID: "fig10", Claim: "MEM/LLC coloring is shortest",
			Expected: "MEM+LLC < buddy", Measured: "buddy 1.00, MEM+LLC 0.71", Pass: true},
		{ID: "bpm", Claim: "BPM always results in longer runtimes",
			Expected: "BPM > buddy", Measured: "BPM 0.98x buddy", Pass: false},
	}}
	var sb strings.Builder
	rep.WriteMarkdown(&sb)
	if got, want := rep.Passed(), 2; got != want {
		t.Errorf("Passed() = %d, want %d", got, want)
	}
	checkGolden(t, "report.golden", sb.String())
}

// Sanity on the fixture set itself: every golden this suite compares
// against must exist and be non-empty, so a botched -update run (or a
// stray clean) fails loudly instead of skipping comparisons.
func TestGoldenFixturesPresent(t *testing.T) {
	if *update {
		t.Skip("fixtures are being rewritten")
	}
	for _, name := range []string{
		"latency.golden", "fig10.golden", "suite.golden",
		"perthread.golden", "sweep.golden", "report.golden",
	} {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Errorf("missing golden file %s: %v", name, err)
		} else if len(b) == 0 {
			t.Errorf("golden file %s is empty", name)
		}
	}
}
