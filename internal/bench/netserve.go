package bench

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/wire"
)

// The netserve experiment measures the wire path: the same churn the
// serve experiment runs in-process is driven through real OS sockets
// against a tintserved-shaped daemon (internal/wire). Its subject is
// the protocol overhead and connection-count scaling, so like the
// serve experiment it is host-concurrency dependent and the cmd layer
// does the timing.

// NetServeSpec sizes one connection-scaling cell.
type NetServeSpec struct {
	Name  string // scenario label, e.g. "8_conns"
	Conns int    // concurrent client connections, each its own socket
	Ops   int    // churn operations per connection
}

// NetServeCellResult is one wire cell's outcome.
type NetServeCellResult struct {
	Spec NetServeSpec
	// Ops counts completed client operations, as in ServeCellResult.
	Ops     uint64
	Retries uint64
	Stats   serve.Stats
	Daemon  wire.DaemonStats
}

// RunNetServeCell boots a daemon on a private unix socket, dials
// spec.Conns sessions, runs the standard churn over each from its own
// goroutine, says goodbye, and shuts the daemon down — which audits
// the final state with the cross-shard checker. Each session takes
// the color plan the daemon's dispatch scheduler would hand task i.
func RunNetServeCell(spec NetServeSpec, memBytes uint64, cfg serve.Config) (*NetServeCellResult, error) {
	if spec.Conns < 1 || spec.Ops < 1 {
		return nil, fmt.Errorf("netserve: bad spec %+v", spec)
	}
	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(memBytes, topo.Nodes())
	if err != nil {
		return nil, err
	}
	d, err := wire.NewDaemon(topo, m, cfg)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "tintnet")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	l, err := net.Listen("unix", filepath.Join(dir, "d.sock"))
	if err != nil {
		d.Close()
		return nil, err
	}
	serveDone := make(chan error, 1)
	//tintvet:ignore goroleak: bounded by the deferred d.Close — Serve returns on close and the send lands in the 1-buffered channel
	go func() { serveDone <- d.Serve(l) }()
	defer d.Close()

	assign, err := sched.PlanAssign(m, topo, wire.UncoloredEvery)
	if err != nil {
		return nil, err
	}
	addr := l.Addr().String()
	var wg sync.WaitGroup
	completed := make([]uint64, spec.Conns)
	retries := make([]uint64, spec.Conns)
	errs := make([]error, spec.Conns)
	for i := 0; i < spec.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := wire.Dial("unix", addr)
			if err != nil {
				errs[i] = err
				return
			}
			core, bank, llc := assign(i, i)
			if err := c.Hello(core, bank, llc); err != nil {
				errs[i] = err
				//tintvet:ignore errdrop: hello failed; best-effort hang-up, nothing allocated yet
				_ = c.Close()
				return
			}
			completed[i], retries[i], errs[i] = serveChurn(c, spec.Ops, int64(i)+1)
			if errs[i] == nil {
				errs[i] = c.Goodbye()
			} else {
				//tintvet:ignore errdrop: already failing; churn error wins over hang-up error
				_ = c.Close()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("netserve: conn %d: %w", i, err)
		}
	}
	// Close audits at quiesce; its error is the audit verdict.
	if err := d.Close(); err != nil {
		return nil, err
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("netserve: serve loop: %w", err)
	}
	ds := d.Stats()
	if ds.Reclaimed != 0 || ds.ReclaimFailed != 0 {
		return nil, fmt.Errorf("netserve: clean goodbyes left reclaim work: %+v", ds)
	}
	res := &NetServeCellResult{Spec: spec, Stats: d.Server().Stats(), Daemon: ds}
	for i := range completed {
		res.Ops += completed[i]
		res.Retries += retries[i]
	}
	return res, nil
}

// NetServeScalingSpecs is the standard connection-count sweep.
func NetServeScalingSpecs(ops int) []NetServeSpec {
	return []NetServeSpec{
		{Name: "1_conn", Conns: 1, Ops: ops},
		{Name: "4_conns", Conns: 4, Ops: ops},
		{Name: "8_conns", Conns: 8, Ops: ops},
		{Name: "16_conns", Conns: 16, Ops: ops},
		{Name: "32_conns", Conns: 32, Ops: ops},
	}
}

// ChurnSpec sizes one task-churn cell: the daemon's own dispatch
// scheduler admits Tasks simulated tasks under Policy and runs them
// to exit.
type ChurnSpec struct {
	Name   string
	Policy sched.Policy
	Tasks  int
	Ops    int // churn operations per task
}

// ChurnCellResult is one task-churn cell's outcome. Result is fully
// deterministic for a spec (the dispatch scheduler is serial); only
// the cmd layer's wall clock varies.
type ChurnCellResult struct {
	Spec   ChurnSpec
	Result *sched.Result
	Stats  serve.Stats
}

// churnTaskSpecs derives the deterministic task mix for a cell:
// staggered arrivals, a blocking cadence on every other task, and —
// via the daemon's coloring stride — a mix of colored and uncolored
// tasks.
func churnTaskSpecs(spec ChurnSpec) []sched.Spec {
	specs := make([]sched.Spec, spec.Tasks)
	for i := range specs {
		specs[i] = sched.Spec{Arrival: uint32(i % 3), Ops: uint32(spec.Ops)}
		if i%2 == 1 {
			specs[i].BlockEvery = uint32(20 + 10*(i%5))
			specs[i].BlockFor = uint32(1 + i%3)
		}
	}
	return specs
}

// RunChurnCell ships a task batch to the daemon over one session and
// has the daemon's scheduler run it: TaskSpawn × Tasks, one TaskRun,
// then goodbye and the shutdown audit.
func RunChurnCell(spec ChurnSpec, memBytes uint64, cfg serve.Config) (*ChurnCellResult, error) {
	if spec.Tasks < 1 || spec.Ops < 1 {
		return nil, fmt.Errorf("churn: bad spec %+v", spec)
	}
	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(memBytes, topo.Nodes())
	if err != nil {
		return nil, err
	}
	d, err := wire.NewDaemon(topo, m, cfg)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "tintchurn")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	l, err := net.Listen("unix", filepath.Join(dir, "d.sock"))
	if err != nil {
		d.Close()
		return nil, err
	}
	serveDone := make(chan error, 1)
	//tintvet:ignore goroleak: bounded by the deferred d.Close — Serve returns on close and the send lands in the 1-buffered channel
	go func() { serveDone <- d.Serve(l) }()
	defer d.Close()

	c, err := wire.Dial("unix", l.Addr().String())
	if err != nil {
		return nil, err
	}
	for i, sp := range churnTaskSpecs(spec) {
		id, err := c.TaskSpawn(sp)
		if err != nil {
			return nil, fmt.Errorf("churn: spawn %d: %w", i, err)
		}
		if id != uint32(i) {
			return nil, fmt.Errorf("churn: spawn %d got id %d", i, id)
		}
	}
	res, err := c.TaskRun(sched.Config{Policy: spec.Policy, Quantum: 16, Cores: 4})
	if err != nil {
		return nil, fmt.Errorf("churn: run: %w", err)
	}
	for i, tr := range res.Tasks {
		if tr.State != sched.StateExit || tr.Err != "" {
			return nil, fmt.Errorf("churn: task %d ended %v (%s)", i, tr.State, tr.Err)
		}
	}
	if err := c.Goodbye(); err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("churn: serve loop: %w", err)
	}
	return &ChurnCellResult{Spec: spec, Result: res, Stats: d.Server().Stats()}, nil
}

// ChurnScalingSpecs is the standard task-churn sweep: the three
// admission policies at a fixed width, plus a task-count sweep under
// round-robin.
func ChurnScalingSpecs(ops int) []ChurnSpec {
	return []ChurnSpec{
		{Name: "fifo_8_tasks", Policy: sched.FIFO, Tasks: 8, Ops: ops},
		{Name: "rr_8_tasks", Policy: sched.RR, Tasks: 8, Ops: ops},
		{Name: "vrr_8_tasks", Policy: sched.VRR, Tasks: 8, Ops: ops},
		{Name: "rr_2_tasks", Policy: sched.RR, Tasks: 2, Ops: ops},
		{Name: "rr_32_tasks", Policy: sched.RR, Tasks: 32, Ops: ops},
	}
}
