package bench

import (
	"fmt"
	"io"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// LatencyRow is one node's uncontended DRAM access latency as seen
// from a fixed core.
type LatencyRow struct {
	Node   int
	Hops   int
	Cycles float64 // mean cycles per cold cache-line access
}

// LatencyResult is the local/remote latency primer backing the
// paper's claim that "the latency of local memory controller accesses
// is much lower than that of remote memory controller accesses".
type LatencyResult struct {
	Core topology.CoreID
	Rows []LatencyRow
}

// RunLatency measures, from one core, the average cold-access latency
// to each memory node: fresh cache lines, no contention, so the
// difference is purely the controller distance. Nodes are measured as
// independent scatter/gather jobs, up to `workers` at a time.
func RunLatency(mach *Machine, core topology.CoreID, linesPerNode, workers int) (*LatencyResult, error) {
	if linesPerNode <= 0 {
		linesPerNode = 512
	}
	out := &LatencyResult{Core: core}
	rows, err := gather(mach.Topo.Nodes(), workers, func(n int) (LatencyRow, error) {
		// Fresh memory system per node so caches are cold and no
		// cross-node state leaks.
		ms, err := mem.New(mach.Topo, mach.Mapping, mach.MemCfg)
		if err != nil {
			return LatencyRow{}, err
		}
		base, limit := mach.Mapping.NodeRange(n)
		var total uint64
		var t uint64
		for i := 0; i < linesPerNode; i++ {
			// Stride by page so every access opens a new row (worst
			// case, uniform across nodes).
			a := base + phys.Addr(uint64(i)*phys.PageSize)
			if a >= limit {
				break
			}
			done := ms.Access(core, a, false, clock.Time(t))
			total += uint64(done) - t
			t = uint64(done) + 1000 // idle gap: no queueing carryover
		}
		return LatencyRow{
			Node:   n,
			Hops:   mach.Topo.Hops(core, topology.NodeID(n)),
			Cycles: float64(total) / float64(linesPerNode),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// WriteTable prints the latency primer.
func (r *LatencyResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Local vs remote controller latency from core %d (cold lines)\n", r.Core)
	fmt.Fprintf(w, "%-6s %-6s %12s\n", "node", "hops", "cycles/line")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-6d %12.1f\n", row.Node, row.Hops, row.Cycles)
	}
}
