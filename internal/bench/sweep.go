package bench

import (
	"fmt"
	"io"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/stats"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// Sensitivity sweeps: how robust is the paper's conclusion to the
// machine parameters the authors could not vary on fixed hardware?
// Each sweep point rebuilds the machine with one parameter changed
// and measures the MEM+LLC-vs-buddy runtime ratio on a chosen
// workload. The paper's claim survives a parameter regime if the
// ratio stays below 1.

// SweepParam selects which machine parameter a sweep varies.
type SweepParam string

// Sweepable parameters.
const (
	// SweepHopCycles varies the per-hop interconnect propagation
	// cost: 0 collapses the machine to UMA (locality worthless),
	// large values make NUMA distance dominate.
	SweepHopCycles SweepParam = "hop-cycles"
	// SweepRowPenalty varies tRP+tRCD (the row-conflict penalty)
	// relative to tCAS: 0 removes the row buffer (bank isolation
	// worthless), large values magnify bank interference.
	SweepRowPenalty SweepParam = "row-penalty"
	// SweepLLCWays varies the shared L3's associativity at constant
	// capacity — lower associativity makes cross-thread conflict
	// misses (and so LLC coloring) matter more.
	SweepLLCWays SweepParam = "llc-ways"
)

// SweepPoint is one measurement of a sweep.
type SweepPoint struct {
	Value     float64 // the swept parameter's value
	Buddy     stats.Summary
	MEMLLC    stats.Summary
	RatioMean float64 // MEMLLC.Mean / Buddy.Mean
}

// SweepResult holds a full sweep.
type SweepResult struct {
	Param    SweepParam
	Workload string
	Config   Config
	Points   []SweepPoint
	// Ops counts engine ops across every sweep cell (perf accounting).
	Ops uint64
}

// RunSweep measures the MEM+LLC/buddy runtime ratio of one workload
// at each value of the chosen parameter, running up to `workers`
// cells concurrently. Machine state is rebuilt per point; everything
// else (memory size, aging, workload seed) stays fixed. Each (point,
// policy) cell is an independent scatter/gather job against its
// point's machine, so the sweep parallelizes without changing a byte
// of output.
func RunSweep(param SweepParam, values []float64, wl workload.Workload, cfgName string,
	params workload.Params, repeats int, memBytes uint64, workers int) (*SweepResult, error) {
	if memBytes == 0 {
		memBytes = DefaultMemBytes
	}
	// Machine descriptions are cheap to build (the expensive aged-zone
	// prototypes materialize lazily, per machine, under its own
	// mutex); validate every sweep value before any cell runs.
	machines := make([]*Machine, len(values))
	var out *SweepResult
	for i, v := range values {
		mach, err := NewMachine(MachineOptions{MemBytes: memBytes})
		if err != nil {
			return nil, err
		}
		if err := applySweepParam(mach, param, v); err != nil {
			return nil, err
		}
		cfg, err := ConfigByName(mach.Topo, cfgName)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = &SweepResult{Param: param, Workload: wl.Name, Config: cfg}
		}
		machines[i] = mach
	}
	pols := []policy.Policy{policy.Buddy, policy.MEMLLC}
	cells, err := gather(len(values)*len(pols), workers, func(i int) (Cell, error) {
		pt, p := i/len(pols), pols[i%len(pols)]
		return RunRepeated(machines[pt], RunSpec{Workload: wl, Config: out.Config, Policy: p, Params: params}, repeats)
	})
	if err != nil {
		return nil, err
	}
	for i, v := range values {
		buddy, colored := cells[i*len(pols)], cells[i*len(pols)+1]
		out.Ops += buddy.Ops + colored.Ops
		out.Points = append(out.Points, SweepPoint{
			Value:     v,
			Buddy:     buddy.Runtime,
			MEMLLC:    colored.Runtime,
			RatioMean: stats.NormRatio(colored.Runtime.Mean, buddy.Runtime.Mean),
		})
	}
	return out, nil
}

func applySweepParam(mach *Machine, param SweepParam, v float64) error {
	switch param {
	case SweepHopCycles:
		if v < 0 {
			return fmt.Errorf("bench: hop cycles must be >= 0")
		}
		mach.MemCfg.HopCycles = clock.Dur(v)
	case SweepRowPenalty:
		if v < 0 {
			return fmt.Errorf("bench: row penalty must be >= 0")
		}
		mach.MemCfg.DRAM.TRP = clock.Dur(v / 2)
		mach.MemCfg.DRAM.TRCD = clock.Dur(v / 2)
	case SweepLLCWays:
		ways := int(v)
		if ways < 1 {
			return fmt.Errorf("bench: LLC ways must be >= 1")
		}
		// Keep capacity constant; the set count adjusts and must
		// stay a power of two for the cache constructor.
		mach.MemCfg.L3.Ways = ways
	default:
		return fmt.Errorf("bench: unknown sweep parameter %q", param)
	}
	return nil
}

// WriteTable prints the sweep.
func (r *SweepResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Sensitivity sweep — %s on %s (%s); MEM+LLC runtime normalized to buddy\n",
		r.Param, r.Workload, r.Config.Name)
	fmt.Fprintf(w, "%-12s %15s %15s %10s\n", string(r.Param), "buddy cycles", "MEM+LLC cycles", "ratio")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12g %15.0f %15.0f %10.3f\n",
			p.Value, p.Buddy.Mean, p.MEMLLC.Mean, p.RatioMean)
	}
}

// WriteCSV exports the sweep.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "param,value,buddy_mean,memllc_mean,ratio\n"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g\n",
			r.Param, p.Value, p.Buddy.Mean, p.MEMLLC.Mean, p.RatioMean); err != nil {
			return err
		}
	}
	return nil
}
