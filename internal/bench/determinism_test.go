package bench

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// Regression gate for the repository's central reproducibility claim
// (DESIGN.md Sec. 6, CONTRIBUTING.md): the simulator is a pure
// function of its seeds. The same MEM+LLC cell run twice must produce
// byte-identical metrics — down to every per-thread vector and
// memory-system ratio. Any nondeterminism smuggled in (map iteration,
// wall-clock, global rand) shows up here as a diff between two runs
// in the same process.
func TestRunsAreByteIdentical(t *testing.T) {
	mach := testMachine(t)
	cfg, err := ConfigByName(mach.Topo, "4_threads_4_nodes")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ByName("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{
		Workload:  wl,
		Config:    cfg,
		Policy:    policy.MEMLLC,
		Params:    workload.Params{Seed: 12345, Scale: 0.25},
		ChurnSeed: 7,
	}

	// The planned color sets must honor the policy's disjointness
	// promise before we even run.
	asn, err := policy.Plan(spec.Policy, mach.Mapping, mach.Topo, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.CheckPlan(mach.Mapping, spec.Policy, asn); err != nil {
		t.Fatal(err)
	}

	first, err := Run(mach, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(mach, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two runs of the same spec diverged:\n run 1: %+v\n run 2: %+v", first, second)
	}
	// Belt and braces: the printed representation (which covers
	// float bit patterns via %v and every slice element) must match
	// byte for byte.
	if a, b := fmt.Sprintf("%#v", first), fmt.Sprintf("%#v", second); a != b {
		t.Fatalf("formatted metrics differ:\n%s\n%s", a, b)
	}
	if first.Runtime == 0 {
		t.Fatal("run produced zero runtime — workload did not execute")
	}
}
