package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// The serve experiment measures the sharded allocation front-end
// (internal/serve) under real goroutine concurrency: N clients
// churning allocations against M engaged NUMA-node shards. Unlike
// every other experiment here, its subject is host concurrency
// itself, so it is *not* routed through the deterministic
// scatter/gather runner and its throughput is wall-clock dependent;
// this package only counts operations and audits correctness — the
// cmd layer times the run, keeping wall-clock reads out of internal
// packages.

// ServeSpec sizes one serve-scaling cell.
type ServeSpec struct {
	Name    string // scenario label, e.g. "1_node_16_clients"
	Nodes   int    // NUMA nodes engaged (clients pin to their cores)
	Clients int    // total clients, spread round-robin over the nodes
	Ops     int    // churn operations per client
}

// ServeCellResult is one cell's outcome: deterministic operation
// counts plus the server's (timing-dependent) serving diagnostics.
type ServeCellResult struct {
	Spec ServeSpec
	// Ops counts completed client operations (allocations and frees,
	// including the final drain). As long as the machine never hits
	// global exhaustion it depends only on the spec, not on
	// scheduling; once ErrNoMemory fires, which client absorbs it is
	// interleaving-dependent and the drain size can vary.
	Ops uint64
	// Retries counts ErrBusy rejections the clients absorbed —
	// backpressure observed, work shed and retried.
	Retries uint64
	Stats   serve.Stats
}

// churnAllocator is the client surface the churn driver needs; both
// the inline serve.Client and the offloaded serve.OffloadClient
// satisfy it, so inline and offloaded cells run the identical
// workload.
type churnAllocator interface {
	Alloc() (phys.Frame, error)
	Free(phys.Frame) error
}

// serveChurn drives one client: mostly allocations with enough frees
// to keep the live set bounded, absorbing backpressure and
// exhaustion. Returns completed operations.
func serveChurn(c churnAllocator, ops int, seed int64) (completed, retries uint64, err error) {
	rng := rand.New(rand.NewSource(seed))
	var owned []phys.Frame
	for op := 0; op < ops; {
		if len(owned) > 0 && rng.Intn(10) < 4 {
			j := rng.Intn(len(owned))
			if err := c.Free(owned[j]); err != nil {
				return completed, retries, err
			}
			owned[j] = owned[len(owned)-1]
			owned = owned[:len(owned)-1]
			completed++
			op++
			continue
		}
		f, allocErr := c.Alloc()
		switch {
		case errors.Is(allocErr, serve.ErrBusy):
			retries++
			runtime.Gosched()
			continue // retry without consuming the op budget
		case errors.Is(allocErr, serve.ErrNoMemory):
			if len(owned) == 0 {
				return completed, retries, allocErr
			}
			if err := c.Free(owned[len(owned)-1]); err != nil {
				return completed, retries, err
			}
			owned = owned[:len(owned)-1]
			completed++
			op++
			continue
		case allocErr != nil:
			return completed, retries, allocErr
		}
		owned = append(owned, f)
		completed++
		op++
	}
	for _, f := range owned {
		if err := c.Free(f); err != nil {
			return completed, retries, err
		}
		completed++
	}
	return completed, retries, nil
}

// RunServeCell boots a fresh server over the standard platform, pins
// spec.Clients colored clients round-robin to the cores of the first
// spec.Nodes NUMA nodes under a MEM+LLC plan, churns them
// concurrently, drains, and audits the final state with the
// cross-shard checker. The returned Ops count is spec-determined
// short of machine-wide exhaustion; the
// serving diagnostics (batches, retries) are not — they describe the
// actual interleaving.
func RunServeCell(spec ServeSpec, memBytes uint64, cfg serve.Config) (*ServeCellResult, error) {
	return runServeCell(spec, memBytes, cfg, nil)
}

// RunOffloadServeCell runs the same cell through the allocation-core
// front-end (serve.Offload): clients ship requests to one dedicated
// core per node over SPSC rings instead of running the allocator
// inline. Everything else — platform, plan, churn sequence, audit —
// is identical, so a cell's inline and offloaded results are directly
// comparable.
func RunOffloadServeCell(spec ServeSpec, memBytes uint64, cfg serve.Config, ocfg serve.OffloadConfig) (*ServeCellResult, error) {
	return runServeCell(spec, memBytes, cfg, &ocfg)
}

func runServeCell(spec ServeSpec, memBytes uint64, cfg serve.Config, ocfg *serve.OffloadConfig) (*ServeCellResult, error) {
	if spec.Nodes < 1 || spec.Clients < 1 || spec.Ops < 1 {
		return nil, fmt.Errorf("serve: bad spec %+v", spec)
	}
	topo := topology.Opteron6128()
	if spec.Nodes > topo.Nodes() {
		return nil, fmt.Errorf("serve: %d nodes exceed the platform's %d", spec.Nodes, topo.Nodes())
	}
	m, err := phys.DefaultSeparable(memBytes, topo.Nodes())
	if err != nil {
		return nil, err
	}
	s, err := serve.New(topo, m, cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	// Pin clients round-robin over the engaged nodes' cores; the
	// plan hands every client a private slice of those nodes' colors.
	cores := make([]topology.CoreID, spec.Clients)
	for i := range cores {
		node := topology.NodeID(i % spec.Nodes)
		nodeCores := topo.CoresOfNode(node)
		cores[i] = nodeCores[(i/spec.Nodes)%len(nodeCores)]
	}
	asn, err := policy.Plan(policy.MEMLLC, m, topo, cores)
	if err != nil {
		return nil, err
	}
	var off *serve.Offload
	if ocfg != nil {
		off, err = serve.NewOffload(s, *ocfg)
		if err != nil {
			return nil, err
		}
		defer off.Close()
	}
	clients := make([]churnAllocator, spec.Clients)
	for i, core := range cores {
		if off != nil {
			c, err := off.NewClient(core)
			if err != nil {
				return nil, err
			}
			if err := c.SetColors(asn[i].BankColors, asn[i].LLCColors); err != nil {
				return nil, err
			}
			clients[i] = c
			continue
		}
		c, err := s.NewClient(core)
		if err != nil {
			return nil, err
		}
		if err := c.SetColors(asn[i].BankColors, asn[i].LLCColors); err != nil {
			return nil, err
		}
		clients[i] = c
	}

	var wg sync.WaitGroup
	completed := make([]uint64, spec.Clients)
	retries := make([]uint64, spec.Clients)
	errs := make([]error, spec.Clients)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c churnAllocator) {
			defer wg.Done()
			completed[i], retries[i], errs[i] = serveChurn(c, spec.Ops, int64(i)+1)
		}(i, c)
	}
	wg.Wait()
	if off != nil {
		// Stop the allocation cores before auditing; the clients are
		// quiesced, so nothing is abandoned in flight.
		off.Close()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: client %d: %w", i, err)
		}
	}

	r := invariant.AuditServer(s)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Mapped != 0 || r.Loans != 0 || r.Unaccounted != 0 {
		return nil, fmt.Errorf("serve: dirty state after drain: %d outstanding, %d loans, %d unaccounted",
			r.Mapped, r.Loans, r.Unaccounted)
	}

	res := &ServeCellResult{Spec: spec, Stats: s.Stats()}
	for i := range completed {
		res.Ops += completed[i]
		res.Retries += retries[i]
	}
	return res, nil
}

// ServeScalingSpecs is the standard serve-scaling sweep: shard
// scaling at a fixed client count (does throughput rise as the same
// load spreads over more shards?) followed by a client sweep at full
// shard fan-out.
func ServeScalingSpecs(ops int) []ServeSpec {
	return []ServeSpec{
		{Name: "1_node_16_clients", Nodes: 1, Clients: 16, Ops: ops},
		{Name: "2_nodes_16_clients", Nodes: 2, Clients: 16, Ops: ops},
		{Name: "4_nodes_16_clients", Nodes: 4, Clients: 16, Ops: ops},
		{Name: "4_nodes_4_clients", Nodes: 4, Clients: 4, Ops: ops},
		{Name: "4_nodes_8_clients", Nodes: 4, Clients: 8, Ops: ops},
		{Name: "4_nodes_32_clients", Nodes: 4, Clients: 32, Ops: ops},
	}
}
