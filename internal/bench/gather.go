package bench

import "sync"

// gather is the deterministic scatter/gather runner behind every
// experiment's cell parallelism. It evaluates job(0) .. job(n-1) on
// up to `workers` goroutines and returns the results in index order,
// with the lowest-index error (if any) winning.
//
// The determinism contract (DESIGN.md Sec. 8): every job must be a
// pure function of its index — it derives its seeds from the index
// (or from per-cell RunSpec fields), builds all mutable simulator
// state fresh, and shares only immutable machine description plus
// mutex-guarded caches whose contents are keyed purely by seed. Under
// that contract the scatter order is irrelevant and the gather order
// is fixed by index, so any workers value — including 1 — produces
// byte-identical results; parallelism only spends more host cores.
func gather[T any](n, workers int, job func(int) (T, error)) ([]T, error) {
	return Gather(n, workers, job)
}

// Gather is the exported form of the runner, for packages that layer
// their own experiment matrices over this one (the suite registry's
// runner). Callers inherit the same contract.
func Gather[T any](n, workers int, job func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = job(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = job(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
