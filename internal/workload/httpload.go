package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// http driver sizing at Scale 1.
const (
	httpCorpus    = 4 << 20 // shared response corpus bytes
	httpRequests  = 12000   // requests handled per worker
	httpDepth     = 8       // corpus touches per request
	httpReadPct   = 70      // share of requests that only read
	httpReqBytes  = 1024    // request/response scratch buffer
	httpTableEnts = 512     // routing-table entries
	httpCompute   = 3
)

// HTTPSpec tunes the http driver; zero fields take the defaults
// above.
type HTTPSpec struct {
	Corpus   uint64 // shared corpus bytes (master-allocated)
	Requests uint64 // requests per worker
	Depth    int    // corpus touches per request
	ReadPct  int    // percent of requests that only read (0-100)
}

// HTTP ports the shape of golang.org/x/benchmarks' http benchmark: a
// request/response fan-out. The master thread loads a shared routing
// table and response corpus (master-touched, as real servers
// initialize before spawning workers — the anti-pattern coloring must
// cope with); each worker then serves a stream of requests:
// allocate a scratch buffer, look the route up in the shared table,
// gather Depth corpus reads, write the response into the scratch
// buffer, free it. Write requests additionally update the touched
// corpus lines. Per-request malloc/free keeps the allocator hot, and
// every request crosses thread-private scratch with shared
// master-touched data — the divergence the paper's Sec. IV
// attributes to fan-out services.
func HTTP(s HTTPSpec) Workload {
	return Workload{
		Name:        "http",
		Suite:       "ported",
		Description: "request/response fan-out over a shared master-loaded corpus (x/benchmarks http shape)",
		Build: func(threads []engine.Thread, p Params) ([]engine.Phase, error) {
			return buildHTTP(threads, p, s)
		},
	}
}

func buildHTTP(threads []engine.Thread, p Params, s HTTPSpec) ([]engine.Phase, error) {
	corpus := s.Corpus
	if corpus == 0 {
		corpus = p.scaled(httpCorpus)
	}
	corpus = pageAlign(corpus)
	requests := s.Requests
	if requests == 0 {
		requests = p.scaled(httpRequests)
	}
	depth := s.Depth
	if depth == 0 {
		depth = httpDepth
	}
	readPct := s.ReadPct
	if readPct == 0 {
		readPct = httpReadPct
	}
	n := len(threads)

	var corpusVA, tableVA uint64
	tableBytes := pageAlign(httpTableEnts * phys.LineSize)

	// Setup: the master loads the routing table and corpus. Serial
	// and master-touched on purpose (see the doc comment).
	setup := func(yield func(engine.Op) bool) {
		th := threads[0]
		var err error
		if tableVA, err = mmapChunk(th, tableBytes); err != nil {
			return
		}
		if corpusVA, err = mmapChunk(th, corpus); err != nil {
			return
		}
		if !streamTouch(yield, tableVA, tableBytes, true, 1) {
			return
		}
		streamTouch(yield, corpusVA, corpus, true, 1)
	}
	phases := []engine.Phase{engine.Serial("setup", n, setup).Batch()}

	corpusLines := corpus / phys.LineSize
	serveBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		serveBodies[i] = func(yield func(engine.Op) bool) {
			rng := rngFor(p, 900000+i)
			for r := uint64(0); r < requests; r++ {
				// Accept: scratch buffer for the request/response pair.
				buf, err := th.Heap.Malloc(httpReqBytes)
				if err != nil {
					return
				}
				if !yield(engine.Op{VA: buf, Write: true, Compute: httpCompute}) {
					return
				}
				// Route lookup in the shared table.
				ent := uint64(rng.Intn(httpTableEnts))
				if !yield(engine.Op{VA: tableVA + ent*phys.LineSize, Compute: httpCompute}) {
					return
				}
				// Gather the response from the shared corpus; write
				// requests also update the lines they touch.
				write := rng.Intn(100) >= readPct
				for d := 0; d < depth; d++ {
					l := uint64(rng.Int63n(int64(corpusLines)))
					if !yield(engine.Op{VA: corpusVA + l*phys.LineSize, Write: write, Compute: httpCompute}) {
						return
					}
					// Stage into the scratch buffer.
					off := uint64(d) * phys.LineSize % httpReqBytes
					if !yield(engine.Op{VA: buf + off, Write: true}) {
						return
					}
				}
				// Respond and release.
				if th.Heap.Free(buf) != nil {
					return
				}
			}
		}
	}
	// Per-request Malloc/Free mutates process-wide heap state between
	// yields, so the serve phase must not be Batched.
	phases = append(phases, engine.Parallel("serve", serveBodies))
	return phases, nil
}
