package workload

import (
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/policy"
)

func TestFromSpecBuiltins(t *testing.T) {
	// A builtin resolves with no knobs and takes the instance name.
	w, err := FromSpec("my-lbm", "lbm", DriverSpec{})
	if err != nil || w.Name != "my-lbm" {
		t.Fatalf("FromSpec(my-lbm, lbm) = %v, %v", w.Name, err)
	}
	// Empty name defaults to the driver name.
	w, err = FromSpec("", "garbage", DriverSpec{})
	if err != nil || w.Name != "garbage" {
		t.Fatalf("FromSpec(\"\", garbage) = %v, %v", w.Name, err)
	}
	// Unknown driver.
	if _, err := FromSpec("x", "nope", DriverSpec{}); err == nil {
		t.Error("FromSpec accepted unknown driver")
	}
}

// Builtins are pinned shapes: any knob must be rejected, naming the
// offending knob.
func TestFromSpecRejectsKnobsOnBuiltins(t *testing.T) {
	cases := []struct {
		spec DriverSpec
		knob string
	}{
		{DriverSpec{Footprint: 1 << 20}, "footprint"},
		{DriverSpec{Ops: 100}, "ops"},
		{DriverSpec{Depth: 3}, "depth"},
	}
	for _, c := range cases {
		_, err := FromSpec("x", "lbm", c.spec)
		if err == nil || !strings.Contains(err.Error(), c.knob) {
			t.Errorf("FromSpec(lbm, %+v) err = %v, want mention of %q", c.spec, err, c.knob)
		}
	}
}

// Each generic driver rejects knobs outside its set.
func TestFromSpecKnobApplicability(t *testing.T) {
	cases := []struct {
		driver string
		spec   DriverSpec
		knob   string
	}{
		{"garbage", DriverSpec{Depth: 2}, "depth"},
		{"garbage", DriverSpec{Ticks: 2}, "ticks"},
		{"gc_latency", DriverSpec{Block: 64}, "block"},
		{"gc_latency", DriverSpec{ReadPct: 10}, "read_pct"},
		{"http", DriverSpec{Block: 64}, "block"},
		{"http", DriverSpec{Ticks: 1}, "ticks"},
		{"json", DriverSpec{ReadPct: 10}, "read_pct"},
		{"json", DriverSpec{Block: 64}, "block"},
	}
	for _, c := range cases {
		_, err := FromSpec("x", c.driver, c.spec)
		if err == nil || !strings.Contains(err.Error(), c.knob) {
			t.Errorf("FromSpec(%s, %+v) err = %v, want mention of %q", c.driver, c.spec, err, c.knob)
		}
	}
	if _, err := FromSpec("x", "http", DriverSpec{ReadPct: 101}); err == nil {
		t.Error("FromSpec accepted read_pct > 100")
	}
}

// Knobs must actually steer the shape: a bigger footprint or op count
// must change the simulated runtime.
func TestDriverKnobsChangeShape(t *testing.T) {
	run := func(w Workload) uint64 {
		r := newRig(t, fourCores(), policy.MEMLLC)
		phases, err := w.Build(r.e.Threads(), testParams)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.e.Run(phases)
		if err != nil {
			t.Fatal(err)
		}
		if res.Runtime == 0 {
			t.Fatalf("%s: zero runtime", w.Name)
		}
		return uint64(res.Runtime)
	}
	for _, c := range []struct {
		driver     string
		base, more DriverSpec
	}{
		{"garbage", DriverSpec{Ops: 500}, DriverSpec{Ops: 2000}},
		{"gc_latency", DriverSpec{Ticks: 2, Ops: 200}, DriverSpec{Ticks: 5, Ops: 200}},
		{"http", DriverSpec{Ops: 200}, DriverSpec{Ops: 200, Depth: 24}},
		{"json", DriverSpec{Ops: 8}, DriverSpec{Ops: 8, Depth: 8}},
	} {
		small, err := FromSpec("", c.driver, c.base)
		if err != nil {
			t.Fatal(err)
		}
		big, err := FromSpec("", c.driver, c.more)
		if err != nil {
			t.Fatal(err)
		}
		a, b := run(small), run(big)
		if b <= a {
			t.Errorf("%s: knobs did not grow the run: %d -> %d (specs %+v -> %+v)",
				c.driver, a, b, c.base, c.more)
		}
	}
}

// The churn drivers must exercise the allocator in steady state, not
// just during init: live allocations at the end stay bounded while
// the op stream runs.
func TestGarbageChurnsAllocator(t *testing.T) {
	r := newRig(t, fourCores(), policy.MEMLLC)
	w, err := FromSpec("", "garbage", DriverSpec{Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	phases, err := w.Build(r.e.Threads(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	for i, th := range r.e.Threads() {
		st := th.Heap.Stats()
		if st.Frees == 0 {
			t.Errorf("thread %d: no frees — churn phase did not run", i)
		}
		if st.Mallocs <= st.Frees {
			t.Errorf("thread %d: mallocs %d <= frees %d", i, st.Mallocs, st.Frees)
		}
	}
}

func TestDriversListed(t *testing.T) {
	names := map[string]bool{}
	for _, d := range Drivers() {
		names[d] = true
	}
	for _, want := range []string{"synthetic", "lbm", "garbage", "gc_latency", "http", "json"} {
		if !names[want] {
			t.Errorf("Drivers() missing %q", want)
		}
	}
	if len(PortedSuite()) != 4 {
		t.Errorf("PortedSuite has %d entries", len(PortedSuite()))
	}
}
