package workload

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/engine"
)

// heteromix sizing at Scale 1.
const (
	heteroEpochs      = 6         // barrier phases = adaptive decision points
	heteroStreamBytes = 8 << 20   // per-streamer total stream, grown epoch by epoch
	heteroHotBytes    = 512 << 10 // per-reuser hot array (LLC resident set)
	heteroSweeps      = 8         // reuser hot-array sweeps per epoch
	heteroChurnBlock  = 1024      // churner allocation size
	heteroChurnLive   = 24        // churner live blocks (tiny footprint)
	heteroChurnAllocs = 1500      // churner replacements per epoch
	heteroCompute     = 2
)

// HeteroSpec tunes the heterogeneous mix; zero fields take the
// defaults above.
type HeteroSpec struct {
	// Pattern assigns roles round-robin by thread index: 's' streamer,
	// 'r' reuser, 'c' churner. Default "srcs". A homogeneous pattern
	// ("ssss", "rrrr") turns the mix into a differential-test control.
	Pattern string
	// StreamBytes is each streamer's total footprint.
	StreamBytes uint64
	// Epochs is the number of barrier-separated work phases.
	Epochs int
}

// HeteroMix is the adaptive policy engine's showcase workload
// (EXPERIMENTS.md): one program whose threads want *different*
// policies. Streamers grow a footprint no static per-thread color
// budget can hold and sweep all of it every epoch — under a colored
// policy their overflow lives on degradation-ladder loans, streamed
// remotely forever. Reusers hammer a small hot array that wants
// exactly the LLC partition the streamers would waste. Churners turn
// over a tiny heap live set that never repays private colors. Epochs
// end at barriers, so an adaptive engine gets one decision point per
// epoch; no single static policy fits all three roles at once.
func HeteroMix(s HeteroSpec) Workload {
	return Workload{
		Name:        "heteromix",
		Suite:       "synthetic",
		Description: "streamers + reusers + churners; per-role policy wants (adaptive showcase)",
		Build: func(threads []engine.Thread, p Params) ([]engine.Phase, error) {
			return buildHeteroMix(threads, p, s)
		},
	}
}

func buildHeteroMix(threads []engine.Thread, p Params, s HeteroSpec) ([]engine.Phase, error) {
	pattern := s.Pattern
	if pattern == "" {
		pattern = "srcs"
	}
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case 's', 'r', 'c':
		default:
			return nil, fmt.Errorf("workload: heteromix: role %q in pattern %q (want s, r or c)",
				pattern[i], pattern)
		}
	}
	epochs := s.Epochs
	if epochs == 0 {
		epochs = heteroEpochs
	}
	if epochs < 1 {
		return nil, fmt.Errorf("workload: heteromix: %d epochs", epochs)
	}
	streamTotal := s.StreamBytes
	if streamTotal == 0 {
		streamTotal = p.scaled(heteroStreamBytes)
	}
	// Per-epoch growth chunk, page-aligned so every epoch faults fresh
	// pages and the footprint crosses color-capacity mid-run.
	chunk := pageAlign(streamTotal / uint64(epochs))
	hotBytes := pageAlign(p.scaled(heteroHotBytes))
	churnAllocs := p.scaled(heteroChurnAllocs)
	n := len(threads)
	role := func(i int) byte { return pattern[i%len(pattern)] }

	// Per-thread state, each entry touched only by its own thread.
	streamChunks := make([][]uint64, n) // streamer chunk base VAs
	hotVA := make([]uint64, n)
	live := make([][]uint64, n) // churner live block VAs

	initBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		switch role(i) {
		case 'r':
			initBodies[i] = func(yield func(engine.Op) bool) {
				var err error
				if hotVA[i], err = mmapChunk(th, hotBytes); err != nil {
					return
				}
				streamTouch(yield, hotVA[i], hotBytes, true, heteroCompute)
			}
		case 'c':
			initBodies[i] = func(yield func(engine.Op) bool) {
				live[i] = make([]uint64, 0, heteroChurnLive)
				for b := 0; b < heteroChurnLive; b++ {
					va, err := th.Heap.Malloc(heteroChurnBlock)
					if err != nil {
						return
					}
					live[i] = append(live[i], va)
					if !yield(engine.Op{VA: va, Write: true, Compute: heteroCompute}) {
						return
					}
				}
			}
		default: // streamers allocate lazily, epoch by epoch
			initBodies[i] = func(yield func(engine.Op) bool) {}
		}
	}
	phases := []engine.Phase{engine.Parallel("init", initBodies)}

	for e := 0; e < epochs; e++ {
		bodies := make([]engine.Work, n)
		for i := range threads {
			th, i := threads[i], i
			switch role(i) {
			case 's':
				bodies[i] = func(yield func(engine.Op) bool) {
					// Grow by one chunk (fresh faults under whatever
					// policy the task runs RIGHT NOW)...
					va, err := mmapChunk(th, chunk)
					if err != nil {
						return
					}
					streamChunks[i] = append(streamChunks[i], va)
					if !streamTouch(yield, va, chunk, true, heteroCompute) {
						return
					}
					// ...then sweep the whole footprint: placement of
					// every past epoch's pages is paid for again, which
					// is what makes compaction worth its cost.
					for _, base := range streamChunks[i] {
						if !streamTouch(yield, base, chunk, false, heteroCompute) {
							return
						}
					}
				}
			case 'r':
				bodies[i] = func(yield func(engine.Op) bool) {
					for sweep := 0; sweep < heteroSweeps; sweep++ {
						if !streamTouch(yield, hotVA[i], hotBytes, sweep == 0, heteroCompute) {
							return
						}
					}
				}
			default: // 'c'
				bodies[i] = func(yield func(engine.Op) bool) {
					rng := rngFor(p, 900000+i*31+e)
					blocks := live[i]
					if len(blocks) == 0 {
						return
					}
					for a := uint64(0); a < churnAllocs; a++ {
						v := rng.Intn(len(blocks))
						if th.Heap.Free(blocks[v]) != nil {
							return
						}
						va, err := th.Heap.Malloc(heteroChurnBlock)
						if err != nil {
							return
						}
						blocks[v] = va
						if !yield(engine.Op{VA: va, Write: true, Compute: heteroCompute}) {
							return
						}
						if !yield(engine.Op{VA: blocks[rng.Intn(len(blocks))], Compute: heteroCompute}) {
							return
						}
					}
					// End-of-epoch trim: hand empty slabs back and give
					// the kernel its reclaim window, like a GC cycle.
					if _, err := th.Heap.Trim(); err != nil {
						return
					}
				}
			}
		}
		phases = append(phases, engine.Parallel(fmt.Sprintf("epoch%02d", e), bodies))
	}
	return phases, nil
}
