package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// blackscholes proxy sizing at Scale 1.
const (
	bsOptionBytes   = 6 << 20   // option portfolio, master-loaded
	bsResultBytes   = 384 << 10 // per-thread result array
	bsComputePerOpt = 400       // per-option arithmetic (compute bound)
	bsAggrPasses    = 2         // aggregation sweeps over own results
)

// Blackscholes proxies Parsec's option pricer: the master thread
// reads the whole option portfolio serially (a large input load that
// first-touches every page on the master's node and with the master's
// colors), then the threads price disjoint slices with a very high
// compute-to-access ratio, writing into per-thread result arrays, and
// finally aggregate their own results. The big serial fraction, the
// master-placed input, and the low memory intensity leave little for
// coloring to win — the paper measured the smallest improvement here
// (~3.6%, with MEM+LLC(part) the best variant and full MEM+LLC not
// helping).
func Blackscholes() Workload {
	return Workload{
		Name:        "blackscholes",
		Suite:       "Parsec",
		Description: "serial input load + compute-bound parallel pricing",
		Build:       buildBlackscholes,
	}
}

func buildBlackscholes(threads []engine.Thread, p Params) ([]engine.Phase, error) {
	bytes := pageAlign(p.scaled(bsOptionBytes))
	resBytes := pageAlign(p.scaled(bsResultBytes))
	n := len(threads)

	var optionsVA uint64
	resultVA := make([]uint64, n)
	master := threads[0]

	// Serial input parse: the master reads the file and writes the
	// option array — every page first-touched by thread 0.
	load := func(yield func(engine.Op) bool) {
		var err error
		if optionsVA, err = mmapChunk(master, bytes); err != nil {
			return
		}
		streamTouch(yield, optionsVA, bytes, true, 4)
	}
	phases := []engine.Phase{engine.Serial("parse-input", n, load).Batch()}

	// Parallel copy-in: each worker reads its slice of the
	// master-parsed array once and writes it into a local copy —
	// the array-of-structures conversion the real benchmark does.
	slice := pageAlign(bytes / uint64(n))
	localVA := make([]uint64, n)
	copyBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		copyBodies[i] = func(yield func(engine.Op) bool) {
			var err error
			if localVA[i], err = mmapChunk(th, slice); err != nil {
				return
			}
			if resultVA[i], err = mmapChunk(th, resBytes); err != nil {
				return
			}
			start := optionsVA + uint64(i)*slice
			for off := uint64(0); off < slice && start+off < optionsVA+bytes; off += phys.LineSize {
				if !yield(engine.Op{VA: start + off, Compute: 2}) {
					return
				}
				if !yield(engine.Op{VA: localVA[i] + off, Write: true}) {
					return
				}
			}
		}
	}
	phases = append(phases, engine.Parallel("copy-in", copyBodies).Batch())

	// Parallel pricing: read an option line from the local copy,
	// run the long Black-Scholes arithmetic, write the result.
	resLines := resBytes / phys.LineSize
	priceBodies := make([]engine.Work, n)
	for i := range threads {
		i := i
		priceBodies[i] = func(yield func(engine.Op) bool) {
			var k uint64
			for off := uint64(0); off < slice; off += phys.LineSize {
				if !yield(engine.Op{VA: localVA[i] + off, Compute: bsComputePerOpt}) {
					return
				}
				res := resultVA[i] + (k%resLines)*phys.LineSize
				if !yield(engine.Op{VA: res, Write: true}) {
					return
				}
				k++
			}
		}
	}
	phases = append(phases, engine.Parallel("price", priceBodies).Batch())

	// Parallel aggregation over the thread's own results (cached,
	// colored-local data).
	passes := int(p.scaled(bsAggrPasses))
	aggrBodies := make([]engine.Work, n)
	for i := range threads {
		i := i
		aggrBodies[i] = func(yield func(engine.Op) bool) {
			for pass := 0; pass < passes; pass++ {
				if !streamTouch(yield, resultVA[i], resBytes, false, 8) {
					return
				}
			}
		}
	}
	phases = append(phases, engine.Parallel("aggregate", aggrBodies).Batch())
	return phases, nil
}
