package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// bodytrack proxy sizing at Scale 1.
const (
	bodytrackImageBytes    = 2 << 20   // per-frame edge/image maps, partitioned
	bodytrackParticleBytes = 768 << 10 // per-thread particle state
	bodytrackFrames        = 3         // video frames (parallel+serial rounds)
	bodytrackEvalsPerFrame = 16000     // particle evaluations per thread per frame
	bodytrackShareFrac     = 4         // 1-in-N probes read another thread's image slice
	bodytrackCompute       = 8
)

// Bodytrack proxies Parsec's particle-filter body tracker: each video
// frame first computes its edge/image maps in parallel (every thread
// first-touches its slice), then evaluates particle weights — reads
// of the thread's own particles plus image probes that mostly hit the
// thread's own image slice but sometimes cross into other threads'
// slices (a tracked body part spans camera regions). Each frame ends
// with a short serial resampling step on the master. The cross-slice
// probes are the irreducible shared-data traffic the paper
// acknowledges; the private particles and image slices benefit fully
// from coloring.
func Bodytrack() Workload {
	return Workload{
		Name:        "bodytrack",
		Suite:       "Parsec",
		Description: "particle filter: parallel image maps, particle evaluation, serial resampling",
		Build:       buildBodytrack,
	}
}

func buildBodytrack(threads []engine.Thread, p Params) ([]engine.Phase, error) {
	imgBytes := pageAlign(p.scaled(bodytrackImageBytes))
	partBytes := pageAlign(p.scaled(bodytrackParticleBytes))
	evals := int(p.scaled(bodytrackEvalsPerFrame))
	n := len(threads)

	imageVA := make([]uint64, n) // per-thread slice of the frame maps
	particleVA := make([]uint64, n)

	// Parallel init: image slice and particle state first-touched by
	// their owner.
	initBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		initBodies[i] = func(yield func(engine.Op) bool) {
			var err error
			if imageVA[i], err = mmapChunk(th, imgBytes); err != nil {
				return
			}
			if particleVA[i], err = mmapChunk(th, partBytes); err != nil {
				return
			}
			if !streamTouch(yield, imageVA[i], imgBytes, true, 1) {
				return
			}
			streamTouch(yield, particleVA[i], partBytes, true, 1)
		}
	}
	phases := []engine.Phase{engine.Parallel("init", initBodies).Batch()}

	frames := int(p.scaled(bodytrackFrames))
	imgLines := imgBytes / phys.LineSize
	partLines := partBytes / phys.LineSize
	for f := 0; f < frames; f++ {
		// Parallel: recompute this frame's image maps (streaming
		// write over the own slice).
		mapBodies := make([]engine.Work, n)
		for i := range threads {
			i := i
			mapBodies[i] = func(yield func(engine.Op) bool) {
				streamTouch(yield, imageVA[i], imgBytes, true, bodytrackCompute/2)
			}
		}
		phases = append(phases, engine.Parallel("image-maps", mapBodies).Batch())

		// Parallel: particle weight evaluation.
		evalBodies := make([]engine.Work, n)
		for i := range threads {
			i, f := i, f
			evalBodies[i] = func(yield func(engine.Op) bool) {
				rng := rngFor(p, i*1000+f)
				for e := 0; e < evals; e++ {
					pl := uint64(rng.Int63n(int64(partLines)))
					if !yield(engine.Op{VA: particleVA[i] + pl*phys.LineSize, Compute: bodytrackCompute}) {
						return
					}
					// Image probe: usually the own slice, sometimes a
					// neighbour's (body parts cross slice boundaries).
					owner := i
					if rng.Intn(bodytrackShareFrac) == 0 {
						owner = rng.Intn(n)
					}
					ml := uint64(rng.Int63n(int64(imgLines)))
					if !yield(engine.Op{VA: imageVA[owner] + ml*phys.LineSize, Compute: bodytrackCompute}) {
						return
					}
					if !yield(engine.Op{VA: particleVA[i] + pl*phys.LineSize, Write: true, Compute: bodytrackCompute}) {
						return
					}
				}
			}
		}
		phases = append(phases, engine.Parallel("evaluate", evalBodies).Batch())

		// Serial resampling on the master: pass over its own
		// particle slice.
		resample := func(yield func(engine.Op) bool) {
			streamTouch(yield, particleVA[0], partBytes, true, bodytrackCompute)
		}
		phases = append(phases, engine.Serial("resample", n, resample).Batch())
	}
	return phases, nil
}
