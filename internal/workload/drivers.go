package workload

import "fmt"

// DriverSpec is the knob set a suite-registry entry can turn on a
// parameterized workload driver (see internal/suite). The zero value
// of every field means "driver default"; drivers reject knobs they do
// not interpret so a typo in a registry file fails loudly instead of
// silently running the default shape.
//
// Knob meanings by driver:
//
//	garbage    : Footprint (live-set bytes/thread), Block (allocation
//	             size), Ops (churn allocations/thread)
//	gc_latency : Footprint (ballast bytes/thread), Ops (ring writes
//	             per tick/thread), Ticks (scan periods)
//	http       : Footprint (shared corpus bytes), Ops (requests per
//	             worker), Depth (corpus touches/request), ReadPct
//	             (percent of requests that only read)
//	json       : Footprint (input document bytes/thread), Ops
//	             (documents/thread), Depth (parse-tree depth)
//	heteromix  : Footprint (per-streamer stream bytes), Ticks
//	             (barrier epochs = adaptive decision points)
//
// The seven paper workloads take no knobs: their shapes are pinned by
// the evaluation and byte-identical to their Registry() forms.
type DriverSpec struct {
	Footprint uint64 // working-set bytes (meaning is per-driver)
	Block     uint64 // allocation block size in bytes
	Ops       uint64 // operation count (meaning is per-driver)
	Ticks     int    // scan periods (gc_latency)
	Depth     int    // touches or tree depth per operation
	ReadPct   int    // percent of operations that only read (0-100)
}

// knobError reports a knob set on a driver that does not interpret it.
func knobError(driver, knob string) error {
	return fmt.Errorf("workload: driver %s does not take %s", driver, knob)
}

// checkKnobs rejects any knob outside the allowed set. allowed maps
// knob name -> whether the spec sets it.
func (s DriverSpec) checkKnobs(driver string, allowed ...string) error {
	set := map[string]bool{
		"footprint": s.Footprint != 0,
		"block":     s.Block != 0,
		"ops":       s.Ops != 0,
		"ticks":     s.Ticks != 0,
		"depth":     s.Depth != 0,
		"read_pct":  s.ReadPct != 0,
	}
	ok := map[string]bool{}
	for _, a := range allowed {
		ok[a] = true
	}
	// Deterministic report order for tests and error stability.
	for _, knob := range []string{"footprint", "block", "ops", "ticks", "depth", "read_pct"} {
		if set[knob] && !ok[knob] {
			return knobError(driver, knob)
		}
	}
	if s.ReadPct < 0 || s.ReadPct > 100 {
		return fmt.Errorf("workload: driver %s: read_pct %d out of range 0-100", driver, s.ReadPct)
	}
	return nil
}

// Drivers lists every driver name FromSpec accepts: the seven paper
// workloads plus the four parameterized shapes ported from
// golang.org/x/benchmarks (garbage, gc_latency, http, json).
func Drivers() []string {
	names := make([]string, 0, len(Registry()))
	for _, w := range Registry() {
		names = append(names, w.Name)
	}
	return names
}

// FromSpec builds a workload instance named name from a driver and
// its knobs. Builtin paper workloads accept no knobs; the four
// parameterized drivers map the spec onto their shape constants.
func FromSpec(name, driver string, s DriverSpec) (Workload, error) {
	if name == "" {
		name = driver
	}
	var w Workload
	switch driver {
	case "garbage":
		if err := s.checkKnobs(driver, "footprint", "block", "ops"); err != nil {
			return Workload{}, err
		}
		w = Garbage(GarbageSpec{Footprint: s.Footprint, Block: s.Block, Allocs: s.Ops})
	case "gc_latency":
		if err := s.checkKnobs(driver, "footprint", "ops", "ticks"); err != nil {
			return Workload{}, err
		}
		w = GCLatency(GCLatencySpec{Ballast: s.Footprint, OpsPerTick: s.Ops, Ticks: s.Ticks})
	case "http":
		if err := s.checkKnobs(driver, "footprint", "ops", "depth", "read_pct"); err != nil {
			return Workload{}, err
		}
		w = HTTP(HTTPSpec{Corpus: s.Footprint, Requests: s.Ops, Depth: s.Depth, ReadPct: s.ReadPct})
	case "json":
		if err := s.checkKnobs(driver, "footprint", "ops", "depth"); err != nil {
			return Workload{}, err
		}
		w = JSON(JSONSpec{Input: s.Footprint, Docs: s.Ops, Depth: s.Depth})
	case "heteromix":
		if err := s.checkKnobs(driver, "footprint", "ticks"); err != nil {
			return Workload{}, err
		}
		w = HeteroMix(HeteroSpec{StreamBytes: s.Footprint, Epochs: s.Ticks})
	default:
		builtin, err := ByName(driver)
		if err != nil {
			return Workload{}, err
		}
		if err := s.checkKnobs(driver); err != nil {
			return Workload{}, err
		}
		w = builtin
	}
	w.Name = name
	return w, nil
}
