package workload

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/heap"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 256 << 20

// testParams shrinks working sets so every workload runs in
// milliseconds.
var testParams = Params{Seed: 42, Scale: 0.05}

type rig struct {
	k  *kernel.Kernel
	ms *mem.System
	e  *engine.Engine
}

func newRig(t *testing.T, cores []topology.CoreID, pol policy.Policy) *rig {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := mem.New(top, m, mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	asn, err := policy.Plan(pol, m, top, cores)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewProcess()
	var threads []engine.Thread
	for i, c := range cores {
		task, err := p.NewTask(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := policy.Apply(task, asn[i]); err != nil {
			t.Fatal(err)
		}
		threads = append(threads, engine.Thread{Task: task, Heap: heap.New(task)})
	}
	e, err := engine.New(ms, threads)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, ms: ms, e: e}
}

func fourCores() []topology.CoreID {
	return []topology.CoreID{0, 4, 8, 12}
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, w := range Registry() {
		if w.Name == "" || w.Build == nil || w.Description == "" {
			t.Errorf("workload %+v incomplete", w.Name)
		}
		if names[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"synthetic", "lbm", "art", "equake", "bodytrack", "freqmine", "blackscholes"} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if len(StandardSuite()) != 6 {
		t.Errorf("StandardSuite has %d entries", len(StandardSuite()))
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("lbm")
	if err != nil || w.Name != "lbm" {
		t.Errorf("ByName(lbm) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted junk")
	}
}

// Every workload must build and run to completion under both buddy
// and MEM+LLC coloring, producing nonzero runtime and memory traffic.
func TestAllWorkloadsRunUnderAllPolicies(t *testing.T) {
	for _, w := range Registry() {
		for _, pol := range []policy.Policy{policy.Buddy, policy.MEMLLC, policy.BPM} {
			t.Run(w.Name+"/"+pol.String(), func(t *testing.T) {
				r := newRig(t, fourCores(), pol)
				phases, err := w.Build(r.e.Threads(), testParams)
				if err != nil {
					t.Fatal(err)
				}
				if len(phases) == 0 {
					t.Fatal("no phases")
				}
				res, err := r.e.Run(phases)
				if err != nil {
					t.Fatal(err)
				}
				if res.Runtime == 0 {
					t.Error("zero runtime")
				}
				tot := r.ms.TotalStats()
				if tot.Accesses == 0 {
					t.Error("no memory accesses issued")
				}
				if r.k.Stats().Faults == 0 {
					t.Error("no page faults")
				}
			})
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range Registry() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func() uint64 {
				r := newRig(t, fourCores(), policy.MEMLLC)
				phases, err := w.Build(r.e.Threads(), testParams)
				if err != nil {
					t.Fatal(err)
				}
				res, err := r.e.Run(phases)
				if err != nil {
					t.Fatal(err)
				}
				return uint64(res.Runtime)
			}
			if a, b := run(), run(); a != b {
				t.Errorf("nondeterministic runtime: %d vs %d", a, b)
			}
		})
	}
}

func TestSeedChangesIrregularWorkloads(t *testing.T) {
	// Random-pattern workloads must differ across seeds (error-bar
	// source); streaming ones may not.
	for _, name := range []string{"equake", "freqmine", "bodytrack"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// Scale large enough that working sets exceed the private
		// caches; fully cache-resident runs have seed-independent
		// timing by construction.
		run := func(seed int64) uint64 {
			r := newRig(t, fourCores(), policy.Buddy)
			phases, err := w.Build(r.e.Threads(), Params{Seed: seed, Scale: 0.4})
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.e.Run(phases)
			if err != nil {
				t.Fatal(err)
			}
			return uint64(res.Runtime)
		}
		if a, b := run(1), run(2); a == b {
			t.Errorf("%s: identical runtime across seeds (%d)", name, a)
		}
	}
}

func TestSyntheticTouchesEveryLineOnce(t *testing.T) {
	r := newRig(t, []topology.CoreID{0}, policy.Buddy)
	w := Synthetic()
	phases, err := w.Build(r.e.Threads(), Params{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	st := r.ms.CoreStats(0)
	// One access per cache line, no reuse: zero cache hits.
	if st.L1Hits != 0 || st.L2Hits != 0 || st.L3Hits != 0 {
		t.Errorf("synthetic benchmark hit caches: %+v", st)
	}
	if st.DRAMReads != st.Accesses {
		t.Errorf("accesses %d != DRAM reads %d", st.Accesses, st.DRAMReads)
	}
}

func TestBlackscholesSerialFraction(t *testing.T) {
	r := newRig(t, fourCores(), policy.Buddy)
	w := Blackscholes()
	phases, err := w.Build(r.e.Threads(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.e.Run(phases)
	if err != nil {
		t.Fatal(err)
	}
	// The serial parse phase must be a substantial fraction of total
	// runtime (the trait limiting blackscholes' coloring gain).
	serial := res.Phases[0]
	if serial.Parallel {
		t.Fatal("parse phase marked parallel")
	}
	frac := float64(serial.End-serial.Start) / float64(res.Runtime)
	if frac < 0.1 {
		t.Errorf("serial fraction = %.3f, want >= 0.1", frac)
	}
}

func TestLBMFirstTouchMatchesPartition(t *testing.T) {
	// Under MEM+LLC every lbm thread's pages must sit on its local
	// node (parallel first touch + controller-aware coloring).
	cores := fourCores()
	r := newRig(t, cores, policy.MEMLLC)
	w := LBM()
	phases, err := w.Build(r.e.Threads(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	for i := range cores {
		if got := r.ms.CoreStats(topology.CoreID(cores[i])); got.RemoteDRAM != 0 {
			t.Errorf("thread %d issued %d remote DRAM accesses under MEM+LLC", i, got.RemoteDRAM)
		}
	}
}

func TestFreqmineUsesHeap(t *testing.T) {
	r := newRig(t, fourCores(), policy.Buddy)
	w := Freqmine()
	phases, err := w.Build(r.e.Threads(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	for i, th := range r.e.Threads() {
		if th.Heap.Stats().Mallocs == 0 {
			t.Errorf("thread %d made no heap allocations", i)
		}
	}
}

func TestScaledParamHelpers(t *testing.T) {
	p := Params{Scale: 0.5}
	if got := p.scaled(100); got != 50 {
		t.Errorf("scaled(100) = %d", got)
	}
	if got := (Params{Scale: 0.0001}).scaled(100); got != 1 {
		t.Errorf("tiny scale floor = %d, want 1", got)
	}
	if got := (Params{}).scaled(100); got != 100 {
		t.Errorf("zero scale = %d, want passthrough 100", got)
	}
	if pageAlign(1) != phys.PageSize || pageAlign(0) != phys.PageSize {
		t.Error("pageAlign floor wrong")
	}
	if pageAlign(phys.PageSize+1) != 2*phys.PageSize {
		t.Error("pageAlign round-up wrong")
	}
}

func TestBodytrackPhaseStructure(t *testing.T) {
	r := newRig(t, fourCores(), policy.Buddy)
	w := Bodytrack()
	phases, err := w.Build(r.e.Threads(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	// init + frames x (image-maps, evaluate, resample).
	if (len(phases)-1)%3 != 0 {
		t.Fatalf("bodytrack has %d phases; want 1 + 3k", len(phases))
	}
	if phases[0].Name != "init" {
		t.Errorf("first phase %q", phases[0].Name)
	}
	res, err := r.e.Run(phases)
	if err != nil {
		t.Fatal(err)
	}
	// Every resample phase is serial (exactly one participant).
	for i, pr := range res.Phases {
		if phases[i].Name == "resample" && pr.Parallel {
			t.Errorf("resample phase %d marked parallel", i)
		}
		if phases[i].Name == "evaluate" && !pr.Parallel {
			t.Errorf("evaluate phase %d not parallel", i)
		}
	}
}

func TestBlackscholesCopyInMakesPricingLocal(t *testing.T) {
	// Under MEM+LLC, pricing reads the thread-local copies: the only
	// remote DRAM traffic should come from the copy-in reads of the
	// master-touched array.
	r := newRig(t, fourCores(), policy.MEMLLC)
	w := Blackscholes()
	phases, err := w.Build(r.e.Threads(), Params{Seed: 1, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(phases))
	for i, p := range phases {
		names[i] = p.Name
	}
	want := []string{"parse-input", "copy-in", "price", "aggregate"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("phase order %v, want %v", names, want)
		}
	}
	// Count remote accesses per phase through the engine tracer.
	remote := map[string]uint64{}
	r.e.SetTracer(func(e engine.TraceEvent) {
		if e.Level == mem.LevelDRAMRemote {
			remote[e.Phase]++
		}
	})
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	if remote["price"] > remote["copy-in"]/10 {
		t.Errorf("pricing phase issued %d remote accesses (copy-in %d); local copies not used",
			remote["price"], remote["copy-in"])
	}
}

func TestArtWeightsGetReused(t *testing.T) {
	// The art proxy's premise is heavy weight reuse: its overall
	// cache hit rate must be far above the synthetic benchmark's 0%.
	r := newRig(t, fourCores(), policy.Buddy)
	w := Art()
	phases, err := w.Build(r.e.Threads(), Params{Seed: 1, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	tot := r.ms.TotalStats()
	hitRate := float64(tot.L1Hits+tot.L2Hits+tot.L3Hits) / float64(tot.Accesses)
	if hitRate < 0.5 {
		t.Errorf("art hit rate %.2f; reuse premise broken", hitRate)
	}
}

func TestEquakeElementLocality(t *testing.T) {
	// Each gather touches 3 adjacent lines plus a write-back: within
	// a run the row-buffer should see SOME hits even under buddy.
	r := newRig(t, fourCores(), policy.Buddy)
	w := Equake()
	phases, err := w.Build(r.e.Threads(), Params{Seed: 1, Scale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	d := r.ms.DRAM().TotalStats()
	if d.Accesses == 0 {
		t.Fatal("no DRAM traffic")
	}
	if d.RowHits == 0 {
		t.Error("no row-buffer hits despite clustered gathers")
	}
}
