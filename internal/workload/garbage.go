package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
)

// garbage driver sizing at Scale 1.
const (
	garbageFootprint = 2 << 20 // live heap bytes per thread
	garbageBlock     = 2048    // allocation size
	garbageAllocs    = 24000   // churn allocations per thread
	garbageCompute   = 2
)

// GarbageSpec tunes the garbage driver; zero fields take the
// defaults above.
type GarbageSpec struct {
	Footprint uint64 // live-set bytes per thread
	Block     uint64 // bytes per allocation
	Allocs    uint64 // churn allocations per thread
}

// Garbage ports the shape of golang.org/x/benchmarks' `garbage`
// benchmark: an allocation-churn-heavy steady state. Each thread
// ramps up a live set of heap blocks, then continuously replaces
// random live blocks — free one, allocate one, write the newcomer,
// read another survivor — so the allocator (and the coloring ladder
// behind it) stays on the critical path for the whole run instead of
// only during init. Block addresses recycle through the size-class
// free lists, which keeps the page working set stable while the
// object population churns.
func Garbage(s GarbageSpec) Workload {
	return Workload{
		Name:        "garbage",
		Suite:       "ported",
		Description: "allocation-churn steady state over a fixed live set (x/benchmarks garbage shape)",
		Build: func(threads []engine.Thread, p Params) ([]engine.Phase, error) {
			return buildGarbage(threads, p, s)
		},
	}
}

func buildGarbage(threads []engine.Thread, p Params, s GarbageSpec) ([]engine.Phase, error) {
	footprint := s.Footprint
	if footprint == 0 {
		footprint = p.scaled(garbageFootprint)
	}
	block := s.Block
	if block == 0 {
		block = garbageBlock
	}
	allocs := s.Allocs
	if allocs == 0 {
		allocs = p.scaled(garbageAllocs)
	}
	liveN := int(footprint / block)
	if liveN < 2 {
		liveN = 2
	}
	n := len(threads)

	// live[i] holds thread i's live block addresses.
	live := make([][]uint64, n)

	// Ramp: build the live set. Malloc between yields advances the
	// process-wide VA bump pointer, so churny phases must NOT be
	// Batched (see the freqmine build-tree rationale).
	rampBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		rampBodies[i] = func(yield func(engine.Op) bool) {
			live[i] = make([]uint64, 0, liveN)
			for k := 0; k < liveN; k++ {
				va, err := th.Heap.Malloc(block)
				if err != nil {
					return
				}
				live[i] = append(live[i], va)
				if !yield(engine.Op{VA: va, Write: true, Compute: garbageCompute}) {
					return
				}
			}
		}
	}
	phases := []engine.Phase{engine.Parallel("ramp", rampBodies)}

	churnBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		churnBodies[i] = func(yield func(engine.Op) bool) {
			rng := rngFor(p, 700000+i)
			blocks := live[i]
			if len(blocks) == 0 {
				return
			}
			for k := uint64(0); k < allocs; k++ {
				// Replace a random victim: free, allocate, write the
				// newcomer (the address usually recycles through the
				// size-class free list).
				v := rng.Intn(len(blocks))
				if th.Heap.Free(blocks[v]) != nil {
					return
				}
				va, err := th.Heap.Malloc(block)
				if err != nil {
					return
				}
				blocks[v] = va
				if !yield(engine.Op{VA: va, Write: true, Compute: garbageCompute}) {
					return
				}
				// Read a surviving block: the scan share of the
				// original benchmark's work.
				if !yield(engine.Op{VA: blocks[rng.Intn(len(blocks))], Compute: garbageCompute}) {
					return
				}
			}
		}
	}
	phases = append(phases, engine.Parallel("churn", churnBodies))
	return phases, nil
}
