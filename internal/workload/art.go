package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// art proxy sizing at Scale 1.
const (
	artWeightsBytes = 512 << 10 // per-thread F1/F2 weight arrays (hot, reused)
	artInputBytes   = 2 << 20   // per-thread scan-window stream (cold)
	artEpochs       = 3         // match passes over the input
	artCompute      = 4
)

// Art proxies SPEC's Adaptive Resonance Theory image matcher: each
// thread repeatedly sweeps its neural-network weight arrays (heavy
// reuse, prime LLC resident set) while streaming scan-window input
// through the cache. Under shared-LLC execution the streaming input
// of all threads evicts everyone's weights; LLC coloring contains the
// pollution, which is why art is among the benchmarks sped up
// significantly in the paper.
func Art() Workload {
	return Workload{
		Name:        "art",
		Suite:       "SPEC",
		Description: "weight-array reuse vs streaming input pollution (LLC-sensitive)",
		Build:       buildArt,
	}
}

func buildArt(threads []engine.Thread, p Params) ([]engine.Phase, error) {
	wBytes := pageAlign(p.scaled(artWeightsBytes))
	inBytes := pageAlign(p.scaled(artInputBytes))
	n := len(threads)

	weightsVA := make([]uint64, n)
	inputVA := make([]uint64, n)

	initBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		initBodies[i] = func(yield func(engine.Op) bool) {
			var err error
			if weightsVA[i], err = mmapChunk(th, wBytes); err != nil {
				return
			}
			if inputVA[i], err = mmapChunk(th, inBytes); err != nil {
				return
			}
			if !streamTouch(yield, weightsVA[i], wBytes, true, 1) {
				return
			}
			streamTouch(yield, inputVA[i], inBytes, true, 1)
		}
	}
	phases := []engine.Phase{engine.Parallel("init", initBodies).Batch()}

	epochs := int(p.scaled(artEpochs))
	bodies := make([]engine.Work, n)
	for i := range threads {
		i := i
		bodies[i] = func(yield func(engine.Op) bool) {
			w, in := weightsVA[i], inputVA[i]
			// Interleave: stream a block of input, then re-sweep the
			// weights (F1/F2 resonance pass). Weights are re-read
			// every iteration — the reuse the LLC must retain.
			const block = 128 << 10
			for e := 0; e < epochs; e++ {
				for ib := uint64(0); ib < inBytes; ib += block {
					end := ib + block
					if end > inBytes {
						end = inBytes
					}
					if !streamTouch(yield, in+ib, end-ib, false, artCompute) {
						return
					}
					if !streamTouch(yield, w, wBytes, false, artCompute) {
						return
					}
					// Winner update: sparse writes into the weights.
					for off := uint64(0); off < wBytes; off += 64 * phys.LineSize {
						if !yield(engine.Op{VA: w + off, Write: true, Compute: artCompute}) {
							return
						}
					}
				}
			}
		}
	}
	phases = append(phases, engine.Parallel("match", bodies).Batch())
	return phases, nil
}
