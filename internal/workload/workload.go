// Package workload defines the simulated programs of the paper's
// evaluation (Sec. V): the synthetic alternating-stride benchmark and
// access-pattern proxies for the six OpenMP benchmarks (SPEC lbm,
// art, equake; Parsec bodytrack, freqmine, blackscholes).
//
// The proxies are substitutions, not ports (see DESIGN.md): each
// encodes the memory traits the paper's analysis attributes to the
// original —
//
//	lbm          : large streaming stencil, first-touch partitioned,
//	               highly memory intensive (largest paper gain)
//	art          : neural-net matching with heavy data reuse
//	               (LLC-sensitive)
//	equake       : sparse FEM gather/scatter (bank/row-buffer
//	               sensitive)
//	bodytrack    : particle filter alternating parallel/serial
//	               phases with a shared model
//	freqmine     : FP-tree pointer chasing over many small heap
//	               nodes (needs bank spread, LLC capacity)
//	blackscholes : master-thread input load, compute-bound parallel
//	               section (smallest paper gain)
//
// Every workload is deterministic for a fixed Params.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Params tunes a workload build.
type Params struct {
	// Seed drives every data-dependent access pattern.
	Seed int64
	// Scale multiplies the default working-set sizes and iteration
	// counts (1.0 = evaluation size; tests use ~0.05-0.2).
	Scale float64
}

// DefaultParams returns evaluation-size parameters.
func DefaultParams() Params { return Params{Seed: 1, Scale: 1.0} }

func (p Params) scaled(n uint64) uint64 {
	if p.Scale <= 0 {
		return n
	}
	v := uint64(float64(n) * p.Scale)
	if v == 0 {
		v = 1
	}
	return v
}

// BuildFunc constructs the phase list for the given threads.
type BuildFunc func(threads []engine.Thread, p Params) ([]engine.Phase, error)

// Workload names a buildable simulated program.
type Workload struct {
	Name        string
	Suite       string // "synthetic", "SPEC" or "Parsec"
	Description string
	Build       BuildFunc
}

// Registry returns all workloads: the paper's seven in presentation
// order, then the four driver shapes ported from golang.org/x/
// benchmarks (at their default knob settings; see FromSpec for
// parameterized instances).
func Registry() []Workload {
	return []Workload{
		Synthetic(),
		LBM(),
		Art(),
		Equake(),
		Bodytrack(),
		Freqmine(),
		Blackscholes(),
		Garbage(GarbageSpec{}),
		GCLatency(GCLatencySpec{}),
		HTTP(HTTPSpec{}),
		JSON(JSONSpec{}),
		HeteroMix(HeteroSpec{}),
	}
}

// StandardSuite returns the six SPEC/Parsec proxies (Figs. 11-14).
func StandardSuite() []Workload {
	return []Workload{LBM(), Art(), Equake(), Bodytrack(), Freqmine(), Blackscholes()}
}

// PortedSuite returns the four golang.org/x/benchmarks shapes at
// their default knobs.
func PortedSuite() []Workload {
	return []Workload{Garbage(GarbageSpec{}), GCLatency(GCLatencySpec{}), HTTP(HTTPSpec{}), JSON(JSONSpec{})}
}

// ByName looks a workload up by its registry name.
func ByName(name string) (Workload, error) {
	for _, w := range Registry() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// --- shared building blocks ---

// mmapChunk reserves a page-aligned region of at least bytes on the
// thread's task. Large regions use Mmap directly (one region) rather
// than the size-class heap, matching how the real benchmarks allocate
// their big arrays with malloc (which forwards to mmap for large
// requests).
func mmapChunk(th engine.Thread, bytes uint64) (uint64, error) {
	return th.Task.Mmap(0, bytes, 0)
}

// streamTouch yields one access per cache line over [va, va+bytes).
func streamTouch(yield func(engine.Op) bool, va, bytes uint64, write bool, compute clock.Dur) bool {
	for off := uint64(0); off < bytes; off += phys.LineSize {
		if !yield(engine.Op{VA: va + off, Write: write, Compute: compute}) {
			return false
		}
	}
	return true
}

// rngFor derives a per-thread RNG so threads are decorrelated but the
// whole run is reproducible.
func rngFor(p Params, tid int) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed*1000003 + int64(tid)*7919 + 17))
}

// alignLine rounds va down to a cache-line boundary.
func alignLine(va uint64) uint64 { return va &^ (phys.LineSize - 1) }
