package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// json driver sizing at Scale 1.
const (
	jsonInputBytes = 2 << 20 // per-thread input document bytes
	jsonDocs       = 48      // documents parsed+serialized per thread
	jsonDepth      = 6       // parse-tree depth
	jsonNodeSize   = 128     // bytes per tree node
	jsonFanout     = 3       // children per interior node
	jsonCompute    = 2
)

// JSONSpec tunes the json driver; zero fields take the defaults
// above.
type JSONSpec struct {
	Input uint64 // input bytes per thread
	Docs  uint64 // documents per thread
	Depth int    // parse-tree depth
}

// JSON ports the shape of golang.org/x/benchmarks' json benchmark:
// decode a large document into a node tree, then re-encode it. Per
// document each thread (1) streams a slice of its private input
// buffer, (2) builds a depth-bounded tree of small heap nodes in
// allocation order (the decode), and (3) walks the tree depth-first
// while streaming the output buffer (the encode). The tree nodes are
// the LLC-sensitive part — the walk revisits them immediately after
// the build — while the input/output streams are pure bandwidth, a
// mix that rewards MEM+LLC coloring on both axes.
func JSON(s JSONSpec) Workload {
	return Workload{
		Name:        "json",
		Suite:       "ported",
		Description: "decode into a node tree and re-encode: stream, build, walk (x/benchmarks json shape)",
		Build: func(threads []engine.Thread, p Params) ([]engine.Phase, error) {
			return buildJSON(threads, p, s)
		},
	}
}

func buildJSON(threads []engine.Thread, p Params, s JSONSpec) ([]engine.Phase, error) {
	input := s.Input
	if input == 0 {
		input = p.scaled(jsonInputBytes)
	}
	input = pageAlign(input)
	docs := s.Docs
	if docs == 0 {
		docs = p.scaled(jsonDocs)
	}
	depth := s.Depth
	if depth == 0 {
		depth = jsonDepth
	}
	// Nodes per document: a full jsonFanout-ary tree of the given
	// depth.
	nodesPerDoc := 0
	for d, width := 0, 1; d < depth; d++ {
		nodesPerDoc += width
		width *= jsonFanout
	}
	n := len(threads)

	inVA := make([]uint64, n)
	outVA := make([]uint64, n)

	initBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		initBodies[i] = func(yield func(engine.Op) bool) {
			var err error
			if inVA[i], err = mmapChunk(th, input); err != nil {
				return
			}
			if outVA[i], err = mmapChunk(th, input); err != nil {
				return
			}
			// First-touch the input (the download); output pages
			// fault on demand during encode.
			streamTouch(yield, inVA[i], input, true, 1)
		}
	}
	phases := []engine.Phase{engine.Parallel("load", initBodies).Batch()}

	sliceBytes := input / docs
	if sliceBytes < phys.LineSize {
		sliceBytes = phys.LineSize
	}
	workBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		workBodies[i] = func(yield func(engine.Op) bool) {
			rng := rngFor(p, 600000+i)
			nodes := make([]uint64, 0, nodesPerDoc)
			for doc := uint64(0); doc < docs; doc++ {
				// Decode: stream the document slice while building
				// the node tree in allocation order.
				base := inVA[i] + (doc*sliceBytes)%input
				off := uint64(0)
				nodes = nodes[:0]
				for k := 0; k < nodesPerDoc; k++ {
					if !yield(engine.Op{VA: inVA[i] + (base-inVA[i]+off)%input, Compute: jsonCompute}) {
						return
					}
					off += phys.LineSize
					va, err := th.Heap.Malloc(jsonNodeSize)
					if err != nil {
						return
					}
					nodes = append(nodes, va)
					if !yield(engine.Op{VA: va, Write: true, Compute: jsonCompute}) {
						return
					}
				}
				// Encode: walk the tree depth-first (parent before a
				// random child chain) and stream the output buffer.
				outOff := (doc * sliceBytes) % input
				for k := range nodes {
					if !yield(engine.Op{VA: nodes[k], Compute: jsonCompute}) {
						return
					}
					// Revisit a random ancestor: pointer-chasing share.
					if k > 0 {
						if !yield(engine.Op{VA: nodes[rng.Intn(k)], Compute: jsonCompute}) {
							return
						}
					}
					if !yield(engine.Op{VA: outVA[i] + (outOff+uint64(k)*phys.LineSize)%input, Write: true}) {
						return
					}
				}
				// Release the document tree before the next one: the
				// decode/encode cycle of the original is
				// allocate-heavy but steady-state.
				for _, va := range nodes {
					if th.Heap.Free(va) != nil {
						return
					}
				}
			}
		}
	}
	// Malloc/Free between yields: must not be Batched (freqmine
	// build-tree rationale).
	phases = append(phases, engine.Parallel("decode-encode", workBodies))
	return phases, nil
}
