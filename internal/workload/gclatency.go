package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// gc_latency driver sizing at Scale 1.
const (
	gcLatencyBallast    = 4 << 20 // resident ballast bytes per thread
	gcLatencyOpsPerTick = 6000    // ring writes per thread per tick
	gcLatencyTicks      = 6       // scan periods
	gcLatencyRingFrac   = 16      // ring is ballast/16
	gcLatencyCompute    = 2
)

// GCLatencySpec tunes the gc_latency driver; zero fields take the
// defaults above.
type GCLatencySpec struct {
	Ballast    uint64 // resident bytes per thread
	OpsPerTick uint64 // ring writes per thread per tick
	Ticks      int    // scan periods
}

// GCLatency ports the shape of golang.org/x/benchmarks' gc_latency
// stress: a latency-percentile-focused workload. Every thread keeps a
// large resident ballast and steadily rewrites a small ring inside
// it; once per tick a single rotating thread additionally sweeps its
// entire ballast (the collector's mark phase). The sweep makes that
// thread the phase straggler, so the pain shows up exactly where the
// original benchmark measures it: in the tail — here the per-thread
// runtime spread and barrier idle of each tick (Figs. 13/14
// machinery), which coloring narrows by keeping the sweep local.
func GCLatency(s GCLatencySpec) Workload {
	return Workload{
		Name:        "gc_latency",
		Suite:       "ported",
		Description: "steady ring writes with a rotating whole-ballast sweep straggler (x/benchmarks gc_latency shape)",
		Build: func(threads []engine.Thread, p Params) ([]engine.Phase, error) {
			return buildGCLatency(threads, p, s)
		},
	}
}

func buildGCLatency(threads []engine.Thread, p Params, s GCLatencySpec) ([]engine.Phase, error) {
	ballast := s.Ballast
	if ballast == 0 {
		ballast = p.scaled(gcLatencyBallast)
	}
	ballast = pageAlign(ballast)
	ops := s.OpsPerTick
	if ops == 0 {
		ops = p.scaled(gcLatencyOpsPerTick)
	}
	ticks := s.Ticks
	if ticks == 0 {
		ticks = int(p.scaled(gcLatencyTicks))
	}
	ringBytes := pageAlign(ballast / gcLatencyRingFrac)
	n := len(threads)

	ballastVA := make([]uint64, n)

	// Init: allocate and first-touch the ballast (owner-touched, so
	// first touch matches the compute partition).
	initBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		initBodies[i] = func(yield func(engine.Op) bool) {
			var err error
			if ballastVA[i], err = mmapChunk(th, ballast); err != nil {
				return
			}
			streamTouch(yield, ballastVA[i], ballast, true, 1)
		}
	}
	phases := []engine.Phase{engine.Parallel("init", initBodies).Batch()}

	ringLines := ringBytes / phys.LineSize
	for tick := 0; tick < ticks; tick++ {
		bodies := make([]engine.Work, n)
		sweeper := tick % n
		for i := range threads {
			i, tick := i, tick
			bodies[i] = func(yield func(engine.Op) bool) {
				rng := rngFor(p, 800000+i*1000+tick)
				// Steady state: rewrite random lines of the ring at
				// the front of the ballast.
				for k := uint64(0); k < ops; k++ {
					l := uint64(rng.Int63n(int64(ringLines)))
					if !yield(engine.Op{VA: ballastVA[i] + l*phys.LineSize, Write: true, Compute: gcLatencyCompute}) {
						return
					}
				}
				// The rotating sweeper walks its whole ballast: the
				// mark-phase straggler that sets this tick's tail.
				if i == sweeper {
					streamTouch(yield, ballastVA[i], ballast, false, gcLatencyCompute)
				}
			}
		}
		phases = append(phases, engine.Parallel("tick", bodies).Batch())
	}
	return phases, nil
}
