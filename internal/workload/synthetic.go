package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// syntheticBytes is the per-thread allocation at Scale 1: large
// enough that the alternating-stride sweep punches through L1/L2 and
// the thread's share of the L3.
const syntheticBytes = 4 << 20

// Synthetic is the paper's Sec. V-A microbenchmark: each thread
// allocates a large space and writes it with an alternating stride —
// M, M+1C, M-1C, M+2C, M-2C, ... (C = 128-byte cache line) — touching
// every line exactly once. The pattern defeats hardware prefetching
// (irrelevant here: none is modeled), guarantees no spatial reuse, and
// first-touches every page, so it measures raw DRAM write latency
// including fault, bank, controller and LLC effects.
func Synthetic() Workload {
	return Workload{
		Name:        "synthetic",
		Suite:       "synthetic",
		Description: "alternating-stride write sweep, one access per cache line (paper Fig. 10)",
		Build:       buildSynthetic,
	}
}

func buildSynthetic(threads []engine.Thread, p Params) ([]engine.Phase, error) {
	bytes := p.scaled(syntheticBytes)
	// Round to whole pages, at least two.
	pages := (bytes + phys.PageSize - 1) / phys.PageSize
	if pages < 2 {
		pages = 2
	}
	bytes = pages * phys.PageSize

	bodies := make([]engine.Work, len(threads))
	for i := range threads {
		th := threads[i]
		bodies[i] = func(yield func(engine.Op) bool) {
			va, err := mmapChunk(th, bytes)
			if err != nil {
				return
			}
			mid := alignLine(va + bytes/2)
			// Alternate M+kC, M-kC until the whole range is covered.
			if !yield(engine.Op{VA: mid, Write: true}) {
				return
			}
			for k := uint64(1); ; k++ {
				up := mid + k*phys.LineSize
				down := mid - k*phys.LineSize
				upOK := up < va+bytes
				downOK := down >= va
				if !upOK && !downOK {
					return
				}
				if upOK && !yield(engine.Op{VA: up, Write: true}) {
					return
				}
				if downOK && !yield(engine.Op{VA: down, Write: true}) {
					return
				}
			}
		}
	}
	return []engine.Phase{engine.Parallel("sweep", bodies).Batch()}, nil
}
