package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// lbm proxy sizing at Scale 1.
const (
	lbmGridBytes = 3 << 20 // per-thread slice of each lattice copy
	lbmSteps     = 4       // time steps (parallel phases)
	lbmCompute   = 6       // cycles of collision arithmetic per line
)

// LBM proxies SPEC's Lattice-Boltzmann fluid solver: two full lattice
// copies streamed alternately (read source cell neighborhood, write
// destination), partitioned across threads and first-touch
// initialized by the owning thread in a parallel init phase. It is
// the most memory-intensive workload in the suite — large heap,
// pure streaming, little reuse — and showed the paper's largest gain
// (~30% at 16 threads / 4 nodes).
func LBM() Workload {
	return Workload{
		Name:        "lbm",
		Suite:       "SPEC",
		Description: "streaming stencil over two lattice copies, first-touch partitioned",
		Build:       buildLBM,
	}
}

func buildLBM(threads []engine.Thread, p Params) ([]engine.Phase, error) {
	bytes := pageAlign(p.scaled(lbmGridBytes))
	n := len(threads)

	// Per-thread partitions of the two lattices; allocated and
	// first-touched by their owner so first touch matches the
	// compute partition (the property the paper calls out).
	srcVA := make([]uint64, n)
	dstVA := make([]uint64, n)

	initBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		initBodies[i] = func(yield func(engine.Op) bool) {
			var err error
			if srcVA[i], err = mmapChunk(th, bytes); err != nil {
				return
			}
			if dstVA[i], err = mmapChunk(th, bytes); err != nil {
				return
			}
			// First-touch both copies (writes).
			if !streamTouch(yield, srcVA[i], bytes, true, 1) {
				return
			}
			streamTouch(yield, dstVA[i], bytes, true, 1)
		}
	}
	phases := []engine.Phase{engine.Parallel("init", initBodies).Batch()}

	steps := int(p.scaled(lbmSteps))
	for s := 0; s < steps; s++ {
		bodies := make([]engine.Work, n)
		flip := s%2 == 1
		for i := range threads {
			i := i
			bodies[i] = func(yield func(engine.Op) bool) {
				src, dst := srcVA[i], dstVA[i]
				if flip {
					src, dst = dst, src
				}
				// Stream: read the source line (cell neighborhood is
				// spatially adjacent and covered by the line), do the
				// collision arithmetic, write the destination line.
				for off := uint64(0); off < bytes; off += phys.LineSize {
					if !yield(engine.Op{VA: src + off, Compute: lbmCompute}) {
						return
					}
					if !yield(engine.Op{VA: dst + off, Write: true}) {
						return
					}
				}
			}
		}
		phases = append(phases, engine.Parallel("step", bodies).Batch())
	}
	return phases, nil
}

func pageAlign(b uint64) uint64 {
	pages := (b + phys.PageSize - 1) / phys.PageSize
	if pages == 0 {
		pages = 1
	}
	return pages * phys.PageSize
}
