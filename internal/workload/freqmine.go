package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
)

// freqmine proxy sizing at Scale 1.
const (
	freqmineNodes      = 24000 // FP-tree nodes built per thread
	freqmineNodeSize   = 64    // bytes per tree node (one cache line)
	freqmineTraversals = 16000 // conditional-pattern walks per thread
	freqmineWalkLen    = 12    // nodes visited per walk
	freqmineCompute    = 3
)

// Freqmine proxies Parsec's FP-growth frequent-itemset miner: each
// thread builds a large pointer-linked FP-tree from many small heap
// allocations, then repeatedly walks conditional pattern paths
// through it. The walks jump between heap pages in data-dependent
// order, so the workload wants its pages spread over many banks
// (row-buffer conflicts against itself otherwise) and a large LLC
// share — which is why the paper found full MEM+LLC coloring, with
// its restricted per-thread bank and LLC slice, beaten by
// LLC+MEM(part) at 16 threads.
func Freqmine() Workload {
	return Workload{
		Name:        "freqmine",
		Suite:       "Parsec",
		Description: "FP-tree build and pointer-chasing walks over small heap nodes",
		Build:       buildFreqmine,
	}
}

func buildFreqmine(threads []engine.Thread, p Params) ([]engine.Phase, error) {
	nNodes := int(p.scaled(freqmineNodes))
	nWalks := int(p.scaled(freqmineTraversals))
	n := len(threads)

	// nodeVAs[i] holds thread i's tree nodes in creation order.
	nodeVAs := make([][]uint64, n)

	buildBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		buildBodies[i] = func(yield func(engine.Op) bool) {
			rng := rngFor(p, i)
			nodeVAs[i] = make([]uint64, 0, nNodes)
			for k := 0; k < nNodes; k++ {
				va, err := th.Heap.Malloc(freqmineNodeSize)
				if err != nil {
					return
				}
				nodeVAs[i] = append(nodeVAs[i], va)
				// Write the new node, then touch its (random)
				// parent to link it — the insertion path.
				if !yield(engine.Op{VA: va, Write: true, Compute: freqmineCompute}) {
					return
				}
				if k > 0 {
					parent := nodeVAs[i][rng.Intn(k)]
					if !yield(engine.Op{VA: parent, Write: true, Compute: freqmineCompute}) {
						return
					}
				}
			}
		}
	}
	// build-tree must NOT be Batched: Heap.Malloc between yields
	// advances the process-wide VA bump pointer, so running a body
	// ahead of its scheduled ops would reorder allocations across
	// threads and change every node address.
	phases := []engine.Phase{engine.Parallel("build-tree", buildBodies)}

	mineBodies := make([]engine.Work, n)
	for i := range threads {
		i := i
		mineBodies[i] = func(yield func(engine.Op) bool) {
			rng := rngFor(p, 500000+i)
			nodes := nodeVAs[i]
			if len(nodes) == 0 {
				return
			}
			for w := 0; w < nWalks; w++ {
				// Conditional pattern walk: data-dependent hops
				// across the node pool.
				idx := rng.Intn(len(nodes))
				for s := 0; s < freqmineWalkLen; s++ {
					if !yield(engine.Op{VA: nodes[idx], Compute: freqmineCompute}) {
						return
					}
					// Next hop derived from current position
					// (deterministic chaos, reproducible).
					idx = int(uint64(idx)*2654435761+uint64(s)) % len(nodes)
				}
			}
		}
	}
	phases = append(phases, engine.Parallel("mine", mineBodies).Batch())
	return phases, nil
}
