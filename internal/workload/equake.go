package workload

import (
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// equake proxy sizing at Scale 1.
const (
	equakeNodeBytes = 2 << 20 // per-thread slice of the FEM node arrays
	equakeGathers   = 160000  // sparse gather/scatter operations per thread
	equakeCompute   = 5
)

// Equake proxies SPEC's earthquake FEM solver: a sparse
// matrix-vector kernel whose unstructured mesh produces
// data-dependent gathers and scatters across the node arrays. The
// irregular page-granular jumps make it row-buffer hostile and
// bank-sensitive: under shared banks the interleaved row activations
// of different threads destroy each other's row locality, the
// interference bank coloring removes.
func Equake() Workload {
	return Workload{
		Name:        "equake",
		Suite:       "SPEC",
		Description: "sparse FEM gather/scatter (bank and row-buffer sensitive)",
		Build:       buildEquake,
	}
}

func buildEquake(threads []engine.Thread, p Params) ([]engine.Phase, error) {
	bytes := pageAlign(p.scaled(equakeNodeBytes))
	gathers := int(p.scaled(equakeGathers))
	n := len(threads)

	nodesVA := make([]uint64, n)

	initBodies := make([]engine.Work, n)
	for i := range threads {
		th, i := threads[i], i
		initBodies[i] = func(yield func(engine.Op) bool) {
			var err error
			if nodesVA[i], err = mmapChunk(th, bytes); err != nil {
				return
			}
			streamTouch(yield, nodesVA[i], bytes, true, 1)
		}
	}
	phases := []engine.Phase{engine.Parallel("init", initBodies).Batch()}

	bodies := make([]engine.Work, n)
	pages := bytes / phys.PageSize
	linesPerPage := uint64(phys.PageSize / phys.LineSize)
	for i := range threads {
		i := i
		bodies[i] = func(yield func(engine.Op) bool) {
			rng := rngFor(p, i)
			base := nodesVA[i]
			for g := 0; g < gathers; g++ {
				// One sparse row: jump to a mesh element (random
				// page — defeats streaming), gather three spatially
				// clustered node entries within it, scatter one
				// update back. The within-element locality gives
				// row-buffer hits that interleaved threads in the
				// same bank destroy — the interference bank coloring
				// removes.
				pg := uint64(rng.Int63n(int64(pages)))
				ln := uint64(rng.Int63n(int64(linesPerPage - 3)))
				elem := base + pg*phys.PageSize + ln*phys.LineSize
				for k := uint64(0); k < 3; k++ {
					if !yield(engine.Op{VA: elem + k*phys.LineSize, Compute: equakeCompute}) {
						return
					}
				}
				if !yield(engine.Op{VA: elem, Write: true, Compute: equakeCompute}) {
					return
				}
			}
		}
	}
	phases = append(phases, engine.Parallel("smvp", bodies).Batch())
	return phases, nil
}
