package tintmalloc

import (
	"testing"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Config{MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuickstartFlow(t *testing.T) {
	s := newSys(t)
	th, err := s.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetMemColor(0); err != nil {
		t.Fatal(err)
	}
	if err := th.SetLLCColor(0); err != nil {
		t.Fatal(err)
	}
	va, err := th.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]Phase{Parallel("touch", []Work{
		func(yield func(Op) bool) {
			yield(Op{VA: va, Write: true})
		},
	})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == 0 {
		t.Error("no simulated time elapsed")
	}
	f, ok := th.FrameOf(va)
	if !ok {
		t.Fatal("page not resident after run")
	}
	m := s.Mapping()
	if m.FrameBankColor(f) != 0 || m.FrameLLCColor(f) != 0 {
		t.Errorf("frame colors = %d/%d, want 0/0",
			m.FrameBankColor(f), m.FrameLLCColor(f))
	}
}

func TestApplyPolicyMEMLLC(t *testing.T) {
	s := newSys(t)
	var threads []*Thread
	for _, c := range []CoreID{0, 4, 8, 12} {
		th, err := s.AddThread(c)
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
	}
	if err := s.ApplyPolicy(PolicyMEMLLC); err != nil {
		t.Fatal(err)
	}
	for i, th := range threads {
		if !th.Task().UsingBank() || !th.Task().UsingLLC() {
			t.Errorf("thread %d not fully colored", i)
		}
		for _, bc := range th.Task().BankColors() {
			if s.Mapping().NodeOfBankColor(bc) != int(s.Topology().NodeOfCore(th.Core())) {
				t.Errorf("thread %d owns non-local bank color %d", i, bc)
			}
		}
	}
}

func TestBuildWorkloadAndRun(t *testing.T) {
	s := newSys(t)
	for _, c := range []CoreID{0, 4} {
		if _, err := s.AddThread(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ApplyPolicy(PolicyMEMLLC); err != nil {
		t.Fatal(err)
	}
	phases, err := s.BuildWorkload("lbm", WorkloadParams{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(phases)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIdle == 0 && res.Runtime == 0 {
		t.Error("run produced no measurements")
	}
	if _, err := s.BuildWorkload("nope", WorkloadParams{}); err == nil {
		t.Error("BuildWorkload accepted junk name")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	// The paper's seven, the four ported x/benchmarks shapes, and the
	// adaptive engine's heteromix showcase.
	if len(names) != 12 {
		t.Errorf("WorkloadNames = %v", names)
	}
	for i, want := range []string{"synthetic", "lbm"} {
		if names[i] != want {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want)
		}
	}
}

func TestAddThreadAfterRunRejected(t *testing.T) {
	s := newSys(t)
	if _, err := s.AddThread(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Phase{Parallel("noop", []Work{
		func(yield func(Op) bool) { yield(Op{Compute: 1}) },
	})}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddThread(1); err == nil {
		t.Error("AddThread after Run succeeded")
	}
}

func TestRunWithoutThreads(t *testing.T) {
	s := newSys(t)
	if _, err := s.Run(nil); err == nil {
		t.Error("Run without threads succeeded")
	}
}

func TestMmapMunmapRoundTrip(t *testing.T) {
	s := newSys(t)
	th, err := s.AddThread(3)
	if err != nil {
		t.Fatal(err)
	}
	va, err := th.Mmap(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Munmap(va, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := th.Munmap(va, 1<<16); err == nil {
		t.Error("double munmap succeeded")
	}
}

func TestColorClearRoundTrip(t *testing.T) {
	s := newSys(t)
	th, err := s.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetMemColor(5); err != nil {
		t.Fatal(err)
	}
	if err := th.ClearMemColor(5); err != nil {
		t.Fatal(err)
	}
	if th.Task().UsingBank() {
		t.Error("bank coloring still active after clear")
	}
	if err := th.SetLLCColor(2); err != nil {
		t.Fatal(err)
	}
	if err := th.ClearLLCColor(2); err != nil {
		t.Fatal(err)
	}
	if th.Task().UsingLLC() {
		t.Error("LLC coloring still active after clear")
	}
}

func TestOverlappedConfig(t *testing.T) {
	s, err := NewSystem(Config{MemBytes: 256 << 20, Overlapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mapping().NumBankColors() != 128 {
		t.Errorf("overlapped bank colors = %d", s.Mapping().NumBankColors())
	}
}

func TestAgedZonesConfig(t *testing.T) {
	s, err := NewSystem(Config{MemBytes: 256 << 20, AgedZones: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	total := s.Mapping().Frames()
	if s.Kernel().FreeFrames() >= total {
		t.Error("aged zones left no holdout")
	}
}

func TestPublicTracer(t *testing.T) {
	s := newSys(t)
	th, err := s.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	s.SetTracer(func(e TraceEvent) { n++ })
	va, err := th.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Phase{Parallel("t", []Work{
		func(yield func(Op) bool) {
			yield(Op{VA: va, Write: true})
			yield(Op{VA: va})
		},
	})}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("tracer saw %d events, want 2", n)
	}
}

func TestPublicLoopScheduling(t *testing.T) {
	s := newSys(t)
	for _, c := range []CoreID{0, 4} {
		if _, err := s.AddThread(c); err != nil {
			t.Fatal(err)
		}
	}
	executed := make([]int, 20)
	body := func(i int, yield func(Op) bool) bool {
		executed[i]++
		return yield(Op{Compute: 5})
	}
	if _, err := s.Run([]Phase{
		Parallel("static", StaticFor(10, 2, func(i int, y func(Op) bool) bool { return body(i, y) })),
		NoWaitParallel("dynamic", DynamicFor(10, 2, 2, func(i int, y func(Op) bool) bool { return body(i+10, y) })),
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range executed {
		if c != 1 {
			t.Errorf("iteration %d ran %d times", i, c)
		}
	}
}

func TestPublicMigrate(t *testing.T) {
	s := newSys(t)
	th, err := s.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	va, err := th.Mmap(8 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Phase{Parallel("touch", []Work{
		func(yield func(Op) bool) {
			for i := uint64(0); i < 8; i++ {
				if !yield(Op{VA: va + i*4096, Write: true}) {
					return
				}
			}
		},
	})}); err != nil {
		t.Fatal(err)
	}
	if err := th.SetMemColor(2); err != nil {
		t.Fatal(err)
	}
	if err := th.SetLLCColor(3); err != nil {
		t.Fatal(err)
	}
	st, err := th.Migrate(va, 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 8 {
		t.Errorf("Migrate scanned %d pages, want 8", st.Scanned)
	}
	m := s.Mapping()
	for i := uint64(0); i < 8; i++ {
		f, ok := th.FrameOf(va + i*4096)
		if !ok {
			t.Fatal("page lost")
		}
		if m.FrameBankColor(f) != 2 || m.FrameLLCColor(f) != 3 {
			t.Errorf("page %d not recolored: %d/%d", i, m.FrameBankColor(f), m.FrameLLCColor(f))
		}
	}
}

func TestCustomTopologyConfig(t *testing.T) {
	s, err := NewSystem(Config{
		MemBytes:       256 << 20,
		Sockets:        1,
		NodesPerSocket: 4,
		CoresPerNode:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology().Cores() != 8 || s.Topology().Nodes() != 4 {
		t.Errorf("custom topology = %v", s.Topology())
	}
	// Invalid custom topology is rejected.
	if _, err := NewSystem(Config{Sockets: -1, NodesPerSocket: 1, CoresPerNode: 1}); err == nil {
		t.Error("NewSystem accepted negative sockets")
	}
	// Memory not divisible by node count is rejected.
	if _, err := NewSystem(Config{MemBytes: (256 << 20) + 4096, Sockets: 1, NodesPerSocket: 3, CoresPerNode: 1}); err == nil {
		t.Error("NewSystem accepted indivisible memory size")
	}
}

func TestPlanPolicyWithoutApply(t *testing.T) {
	s := newSys(t)
	for _, c := range []CoreID{0, 4} {
		if _, err := s.AddThread(c); err != nil {
			t.Fatal(err)
		}
	}
	asn, err := s.PlanPolicy(PolicyMEMLLC)
	if err != nil {
		t.Fatal(err)
	}
	if len(asn) != 2 || len(asn[0].BankColors) == 0 {
		t.Errorf("PlanPolicy = %+v", asn)
	}
}

func TestHeapCallocReallocFreeViaThread(t *testing.T) {
	s := newSys(t)
	th, err := s.AddThread(2)
	if err != nil {
		t.Fatal(err)
	}
	va, err := th.Calloc(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	va2, err := th.Realloc(va, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(va2); err != nil {
		t.Fatal(err)
	}
	if th.Heap().LiveAllocations() != 0 {
		t.Error("allocations leaked")
	}
	if th.Index() != 0 || th.Core() != 2 {
		t.Errorf("thread identity wrong: %d/%d", th.Index(), th.Core())
	}
}
