// Package tintmalloc is a full-system simulation of TintMalloc, the
// controller-aware page-coloring allocator of Pan, Gownivaripalli and
// Mueller (IPDPS 2016), together with the NUMA machine it needs: a
// dual-socket multicore with per-node memory controllers, banked DRAM
// with open-row timing, a shared last-level cache, a Linux-style
// kernel with buddy zones, first-touch page tables and the paper's
// colored free lists, a user-level heap, and a deterministic
// fork-join execution engine that measures runtime and barrier idle
// time.
//
// The package exposes the same one-line opt-in the paper advertises:
// create a thread pinned to a core, then
//
//	thread.SetMemColor(c)   // == mmap(c|SET_MEM_COLOR, 0, prot|COLOR_ALLOC, ...)
//	thread.SetLLCColor(c)
//
// and every subsequent heap allocation the thread first-touches is
// served from physical frames of those colors. Policy planning for
// whole thread teams (MEM+LLC, BPM, the "part" variants of the
// paper's evaluation) is available through ApplyPolicy.
//
// Quick start:
//
//	sys, _ := tintmalloc.NewSystem(tintmalloc.Config{})
//	t0, _ := sys.AddThread(0) // pinned to core 0 (node 0)
//	t0.SetMemColor(0)         // a bank color local to node 0
//	t0.SetLLCColor(0)
//	va, _ := t0.Malloc(4096)
//	sys.Run([]tintmalloc.Phase{tintmalloc.Parallel("touch", []tintmalloc.Work{
//		func(yield func(tintmalloc.Op) bool) {
//			yield(tintmalloc.Op{VA: va, Write: true})
//		},
//	})})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's figures.
package tintmalloc

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/heap"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/pci"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// Re-exported core types. The aliases make the whole simulation
// drivable from this single import.
type (
	// CoreID identifies a hardware core of the simulated machine.
	CoreID = topology.CoreID
	// NodeID identifies a memory node (controller).
	NodeID = topology.NodeID
	// Time is an instant in simulated core cycles.
	Time = clock.Time
	// Dur is a span of simulated core cycles.
	Dur = clock.Dur
	// Op is one step of a simulated thread body.
	Op = engine.Op
	// Work is a thread body yielding Ops in program order.
	Work = engine.Work
	// Phase is a serial or parallel program section.
	Phase = engine.Phase
	// Result aggregates a program run (runtime, per-thread runtime,
	// barrier idle times).
	Result = engine.Result
	// Policy selects one of the paper's coloring schemes.
	Policy = policy.Policy
	// Assignment is the color set planned for one thread.
	Assignment = policy.Assignment
	// WorkloadParams tunes a built-in paper workload.
	WorkloadParams = workload.Params
	// Addr is a physical byte address.
	Addr = phys.Addr
	// Frame is a physical page-frame number.
	Frame = phys.Frame
)

// The paper's coloring policies.
const (
	PolicyBuddy      = policy.Buddy
	PolicyLLC        = policy.LLCOnly
	PolicyMEM        = policy.MEMOnly
	PolicyMEMLLC     = policy.MEMLLC
	PolicyMEMLLCPart = policy.MEMLLCPart
	PolicyLLCMEMPart = policy.LLCMEMPart
	PolicyBPM        = policy.BPM
)

// Serial builds a phase in which only the master thread runs.
func Serial(name string, n int, master Work) Phase { return engine.Serial(name, n, master) }

// Parallel builds a phase from one body per thread.
func Parallel(name string, bodies []Work) Phase { return engine.Parallel(name, bodies) }

// NoWaitParallel builds a barrier-less parallel phase (OpenMP
// `for nowait`, as in the paper's Algorithm 3).
func NoWaitParallel(name string, bodies []Work) Phase { return engine.NoWaitParallel(name, bodies) }

// IterBody emits the ops of one loop iteration (see StaticFor).
type IterBody = engine.IterBody

// StaticFor partitions a loop statically across threads, like OpenMP
// schedule(static).
func StaticFor(n, nThreads int, body IterBody) []Work {
	return engine.StaticFor(n, nThreads, body)
}

// DynamicFor hands out loop chunks from a shared work queue, like
// OpenMP schedule(dynamic, chunk).
func DynamicFor(n, chunk, nThreads int, body IterBody) []Work {
	return engine.DynamicFor(n, chunk, nThreads, body)
}

// TraceEvent describes one executed memory access.
type TraceEvent = engine.TraceEvent

// Tracer receives every executed access of a traced run.
type Tracer = engine.Tracer

// Config parameterizes NewSystem. The zero value builds the paper's
// platform: a dual-socket AMD Opteron 6128 (2 sockets x 2 nodes x 4
// cores), 2 GiB of DRAM, separable color bit mapping, pristine
// (un-aged) buddy zones and perfectly local default allocation.
type Config struct {
	// MemBytes is the installed physical memory (default 2 GiB).
	MemBytes uint64
	// Overlapped selects the paper-faithful Opteron mapping whose
	// bank bits overlap the LLC color bits; only a subset of
	// (bank, LLC) color combinations exists under it.
	Overlapped bool
	// AgedZones ages the buddy zones at boot (page-granular
	// fragmentation with a resident holdout) and gives the default
	// allocator the imperfect NUMA locality of a busy system —
	// the evaluation-machine conditions of the paper. Off by
	// default for a pristine, fully deterministic lab machine.
	AgedZones bool
	// Seed drives zone aging (ignored unless AgedZones).
	Seed int64
	// Sockets/NodesPerSocket/CoresPerNode override the machine
	// shape (all three must be set together; zero keeps the
	// Opteron 6128 preset of 2 sockets x 2 nodes x 4 cores).
	Sockets        int
	NodesPerSocket int
	CoresPerNode   int
}

// System is one simulated machine: topology, kernel, memory
// hierarchy and the process whose threads the caller creates.
type System struct {
	topo    *topology.Topology
	mapping *phys.Mapping
	kern    *kernel.Kernel
	msys    *mem.System
	proc    *kernel.Process
	threads []engine.Thread
	eng     *engine.Engine
	tracer  engine.Tracer
}

// SetTracer installs an access tracer delivered every executed memory
// access in virtual-time order (nil removes it). May be called before
// or after the first Run.
func (s *System) SetTracer(t Tracer) {
	s.tracer = t
	if s.eng != nil {
		s.eng.SetTracer(t)
	}
}

// NewSystem boots a machine. The address mapping is programmed into
// simulated PCI configuration registers by the BIOS and decoded back
// at late boot, exactly as TintMalloc discovers it on real hardware.
func NewSystem(cfg Config) (*System, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 2 << 30
	}
	topo := topology.Opteron6128()
	if cfg.Sockets != 0 || cfg.NodesPerSocket != 0 || cfg.CoresPerNode != 0 {
		var err error
		topo, err = topology.New(topology.Config{
			Sockets:         cfg.Sockets,
			NodesPerSocket:  cfg.NodesPerSocket,
			CoresPerNode:    cfg.CoresPerNode,
			IntraNodeHops:   1,
			IntraSocketHops: 2,
			InterSocketHops: 3,
		})
		if err != nil {
			return nil, err
		}
	}
	build := phys.DefaultSeparable
	if cfg.Overlapped {
		build = phys.OpteronOverlapped
	}
	m, err := build(cfg.MemBytes, topo.Nodes())
	if err != nil {
		return nil, err
	}
	space, err := pci.Bios(m)
	if err != nil {
		return nil, err
	}
	decoded, err := pci.DecodeMapping(space, topo.Nodes())
	if err != nil {
		return nil, err
	}
	kcfg := kernel.DefaultConfig()
	if cfg.AgedZones {
		kcfg.ChurnSeed = cfg.Seed
		if kcfg.ChurnSeed == 0 {
			kcfg.ChurnSeed = 1
		}
		kcfg.HoldoutFrac = 0.05
		kcfg.BuddyRemoteFrac = 0.12
	}
	kern, err := kernel.New(topo, decoded, kcfg)
	if err != nil {
		return nil, err
	}
	msys, err := mem.New(topo, decoded, mem.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &System{
		topo:    topo,
		mapping: decoded,
		kern:    kern,
		msys:    msys,
		proc:    kern.NewProcess(),
	}, nil
}

// Topology describes the machine's sockets, nodes and cores.
func (s *System) Topology() *topology.Topology { return s.topo }

// Mapping exposes the physical address translation (colors per
// address, node ranges, color counts).
func (s *System) Mapping() *phys.Mapping { return s.mapping }

// Kernel exposes the simulated OS kernel (stats, colored free lists).
func (s *System) Kernel() *kernel.Kernel { return s.kern }

// Mem exposes the memory hierarchy (cache/DRAM/interconnect stats).
func (s *System) Mem() *mem.System { return s.msys }

// Thread is one simulated application thread: a kernel task pinned to
// a core plus its user-level heap arena.
type Thread struct {
	sys   *System
	index int
	task  *kernel.Task
	heap  *heap.Heap
}

// AddThread creates a thread pinned to the given core. All threads
// share one address space (one process), as in the paper's OpenMP
// programs. Threads must be created before the first Run.
func (s *System) AddThread(core CoreID) (*Thread, error) {
	if s.eng != nil {
		return nil, fmt.Errorf("tintmalloc: AddThread after Run")
	}
	task, err := s.proc.NewTask(core)
	if err != nil {
		return nil, err
	}
	th := &Thread{sys: s, index: len(s.threads), task: task, heap: heap.New(task)}
	s.threads = append(s.threads, engine.Thread{Task: task, Heap: th.heap})
	return th, nil
}

// Index returns the thread's position (0 = master).
func (t *Thread) Index() int { return t.index }

// Core returns the core the thread is pinned to.
func (t *Thread) Core() CoreID { return t.task.Core() }

// Task exposes the underlying kernel task.
func (t *Thread) Task() *kernel.Task { return t.task }

// Heap exposes the thread's arena.
func (t *Thread) Heap() *heap.Heap { return t.heap }

// SetMemColor adds a memory (controller/bank) color to the thread —
// the paper's one-line opt-in, issued through the real mmap protocol.
func (t *Thread) SetMemColor(color int) error {
	_, err := t.task.Mmap(uint64(color)|kernel.SetMemColor, 0, kernel.ColorAlloc)
	return err
}

// SetLLCColor adds an LLC color to the thread.
func (t *Thread) SetLLCColor(color int) error {
	_, err := t.task.Mmap(uint64(color)|kernel.SetLLCColor, 0, kernel.ColorAlloc)
	return err
}

// ClearMemColor removes a memory color.
func (t *Thread) ClearMemColor(color int) error {
	_, err := t.task.Mmap(uint64(color)|kernel.ClearMemColor, 0, kernel.ColorAlloc)
	return err
}

// ClearLLCColor removes an LLC color.
func (t *Thread) ClearLLCColor(color int) error {
	_, err := t.task.Mmap(uint64(color)|kernel.ClearLLCColor, 0, kernel.ColorAlloc)
	return err
}

// Malloc allocates size bytes on the thread's heap and returns the
// virtual address. Pages are faulted in — and colored — on first
// touch.
func (t *Thread) Malloc(size uint64) (uint64, error) { return t.heap.Malloc(size) }

// Calloc allocates n*size zeroed bytes.
func (t *Thread) Calloc(n, size uint64) (uint64, error) { return t.heap.Calloc(n, size) }

// Realloc resizes a heap block.
func (t *Thread) Realloc(va, size uint64) (uint64, error) { return t.heap.Realloc(va, size) }

// Free releases a heap block.
func (t *Thread) Free(va uint64) error { return t.heap.Free(va) }

// Mmap reserves an anonymous page-aligned region (for large arrays).
func (t *Thread) Mmap(length uint64) (uint64, error) { return t.task.Mmap(0, length, 0) }

// Munmap releases a region previously returned by Mmap.
func (t *Thread) Munmap(va, length uint64) error { return t.task.Munmap(va, length) }

// FrameOf returns the physical frame backing va, if resident.
func (t *Thread) FrameOf(va uint64) (Frame, bool) { return t.task.FrameOfVA(va) }

// MigrateStats reports what a Migrate call did.
type MigrateStats = kernel.MigrateStats

// Migrate recolors the already-resident pages of [va, va+length)
// onto the thread's current colors — the profile-then-recolor
// extension (data first-touched before colors were selected stays
// misplaced under plain TintMalloc). Charge the returned Cost as
// Compute time if calling from inside a running phase.
func (t *Thread) Migrate(va, length uint64) (MigrateStats, error) {
	return t.task.Migrate(va, length)
}

// PlanPolicy computes per-thread color assignments for the current
// thread team under one of the paper's schemes.
func (s *System) PlanPolicy(p Policy) ([]Assignment, error) {
	cores := make([]CoreID, len(s.threads))
	for i, th := range s.threads {
		cores[i] = th.Task.Core()
	}
	return policy.Plan(p, s.mapping, s.topo, cores)
}

// ApplyPolicy plans and installs a coloring scheme on every thread.
func (s *System) ApplyPolicy(p Policy) error {
	asn, err := s.PlanPolicy(p)
	if err != nil {
		return err
	}
	for i, th := range s.threads {
		if err := policy.Apply(th.Task, asn[i]); err != nil {
			return err
		}
	}
	return nil
}

// Run executes program phases on the thread team, returning runtime
// and idle-time measurements. Run may be called repeatedly; virtual
// time continues from the previous run.
func (s *System) Run(phases []Phase) (*Result, error) {
	if len(s.threads) == 0 {
		return nil, fmt.Errorf("tintmalloc: no threads; call AddThread first")
	}
	if s.eng == nil {
		e, err := engine.New(s.msys, s.threads)
		if err != nil {
			return nil, err
		}
		e.SetTracer(s.tracer)
		s.eng = e
	}
	return s.eng.Run(phases)
}

// BuildWorkload constructs one of the paper's workloads ("synthetic",
// "lbm", "art", "equake", "bodytrack", "freqmine", "blackscholes")
// for the current thread team.
func (s *System) BuildWorkload(name string, params WorkloadParams) ([]Phase, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	if params.Scale == 0 {
		params.Scale = 1
	}
	return w.Build(s.threads, params)
}

// WorkloadNames lists the built-in workloads: the paper's seven plus
// the four shapes ported from golang.org/x/benchmarks.
func WorkloadNames() []string {
	var out []string
	for _, w := range workload.Registry() {
		out = append(out, w.Name)
	}
	return out
}
