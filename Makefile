# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench figures report sweep fuzz lint clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every paper figure at full scale (slow; see -scale).
figures:
	$(GO) run ./cmd/tintbench -exp all -repeats 3

# Grade every quantified claim of the paper against fresh runs.
report:
	$(GO) run ./cmd/tintreport

sweep:
	$(GO) run ./cmd/tintbench -exp sweep -sweep hop-cycles -scale 0.5 -repeats 1

fuzz:
	$(GO) test -fuzz=FuzzMmap -fuzztime=30s ./internal/kernel
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/trace

# vet plus the repo's own determinism/correctness analyzers
# (cmd/tintvet); see CONTRIBUTING.md for the rules they enforce.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/tintvet ./...

clean:
	$(GO) clean ./...
