# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-baseline bench-gate alloc-gate serve-smoke netserve-smoke serve-bench offload-bench microbench profile golden figures report sweep chaos-smoke adaptive-smoke fuzz lint vet-fixtures clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Benchmark-regression harness: run every experiment at -parallel 1
# and 8 and write raw per-sample cells/sec + engine ops/sec to
# BENCH_engine.json (benchfmt format 2; see cmd/tintstat).
bench:
	$(GO) run ./cmd/tintbench -exp bench -scale 0.1 -repeats 2 -out BENCH_engine.json

# Regenerate the small fixed-seed report the CI bench-gate job diffs
# against with `tintstat -exact-ops` (review the diff: the engine
# ops/cells counters must only change when the simulation itself
# intentionally changes; the wall-clock fields are host-local noise).
bench-baseline:
	$(GO) run ./cmd/tintbench -exp bench -scale 0.05 -repeats 1 \
		-bench-parallel 1,2 -bench-samples 3 -out BENCH_smoke_baseline.json

# Local version of the CI statistical regression gate: two same-host
# harness runs diffed by tintstat, plus the deterministic -exact-ops
# check against the checked-in baseline. The A/B half runs wide open
# (-alpha 0.001 -threshold 30) because back-to-back runs on a busy
# host drift by 20-30% from scheduling noise alone; it only fires on
# catastrophic slowdowns. For a deliberate before/after comparison,
# run the harness on a quiet host and use tintstat's defaults
# (alpha 0.05, threshold 2%) instead.
bench-gate:
	$(GO) run ./cmd/tintbench -exp bench -scale 0.05 -repeats 1 \
		-bench-parallel 1,2 -bench-samples 3 -out /tmp/tint_bench_a.json
	$(GO) run ./cmd/tintbench -exp bench -scale 0.05 -repeats 1 \
		-bench-parallel 1,2 -bench-samples 3 -out /tmp/tint_bench_b.json
	$(GO) run ./cmd/tintstat -alpha 0.001 -threshold 30 \
		/tmp/tint_bench_a.json /tmp/tint_bench_b.json
	$(GO) run ./cmd/tintstat -exact-ops -threshold 1000000000 \
		BENCH_smoke_baseline.json /tmp/tint_bench_a.json

# Zero-allocation gate, two halves (see CONTRIBUTING.md):
#   1. The AllocsPerRun tests pin the serve colored fast path and the
#      batched-refill round trip at exactly 0 allocs/op. They must
#      run without -race (the race detector's instrumentation
#      allocates; under -race they skip themselves).
#   2. tintstat -exact-allocs checks the engine harness's measured
#      allocs/op against the checked-in smoke baseline: a one-sided
#      growth gate (2% + 0.01 tolerance) over whole-process Mallocs
#      deltas divided by the deterministic op counters. It catches an
#      accidental per-op allocation on any hot path the suite
#      exercises, not just the serve front-end.
alloc-gate:
	$(GO) test -run TestZeroAlloc -count=1 -v ./internal/serve
	$(GO) run ./cmd/tintbench -exp bench -scale 0.05 -repeats 1 \
		-bench-parallel 1,2 -bench-samples 3 -out /tmp/tint_alloc.json
	$(GO) run ./cmd/tintstat -exact-allocs -threshold 1000000000 \
		BENCH_smoke_baseline.json /tmp/tint_alloc.json

# Concurrent front-end shakeout: the kernel-vs-serve differential
# test and the all-cores hammer, both under the race detector (see
# DESIGN.md Sec. 11).
serve-smoke:
	$(GO) test -race -run 'TestDifferentialKernelVsServe|TestHammer' ./internal/serve

# Wire-path shakeout: the client<->daemon differential (byte-identical
# scheduler results and serving counters under all three admission
# policies, on both the data plane and the task plane), the
# malformed-stream survival test, the session-reclaim check, and the
# multi-process hammer — all under the race detector (see DESIGN.md
# Sec. 16).
netserve-smoke:
	$(GO) test -race -count=1 \
		-run 'TestDifferential|TestMultiProcessHammer|TestDaemonSurvivesGarbage|TestSessionCleanupReclaims' \
		./internal/wire
	$(GO) test -race -count=1 -run 'TestCloseIdempotent|TestConcurrentClose' ./internal/serve

# Serve-scaling harness: 16 clients over 1/2/4 shards plus a client
# sweep — and the wire path (connection scaling against an in-process
# tintserved daemon, then the daemon-scheduled task-churn matrix) —
# written to BENCH_serve.json with the previous report folded in as
# the baseline.
serve-bench:
	$(GO) run ./cmd/tintbench -exp serve -serve-ops 20000 -serve-out BENCH_serve.json

# Serve sweep twice — inline, then through the per-node allocation
# cores fed by SPSC rings (serve.Offload) — into one report with the
# inline-vs-offloaded speedup (see EXPERIMENTS.md "offload").
offload-bench:
	$(GO) run ./cmd/tintbench -exp offload -serve-ops 20000 -serve-out BENCH_serve.json

microbench:
	$(GO) test -bench=. -benchmem -benchtime=1x . ./internal/phys ./internal/cache ./internal/mem ./internal/kernel

# CPU+heap profile of the suite experiment (the hot path behind every
# figure). Inspect with `go tool pprof cpu.prof`; see CONTRIBUTING.md.
profile:
	$(GO) run ./cmd/tintbench -exp fig11 -scale 0.1 -repeats 2 -parallel 1 -format csv \
		-cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof; inspect with: go tool pprof cpu.prof"

# Rewrite the committed output fixtures after an intentional format
# change (review the diff!).
golden:
	$(GO) test ./internal/bench -run TestGolden -update
	$(GO) test ./cmd/tintstat -run TestGolden -update

# Regenerate every paper figure at full scale (slow; see -scale).
figures:
	$(GO) run ./cmd/tintbench -exp all -repeats 3

# Grade every quantified claim of the paper against fresh runs.
report:
	$(GO) run ./cmd/tintreport

sweep:
	$(GO) run ./cmd/tintbench -exp sweep -sweep hop-cycles -scale 0.5 -repeats 1

# Quick graceful-degradation shakeout: every workload under two fault
# plans, each cell run twice and compared byte-for-byte (see
# EXPERIMENTS.md "chaos").
chaos-smoke:
	$(GO) run ./cmd/tintbench -exp chaos -scale 0.05 -repeats 1 \
		-plans refill-starve,pressure-storm

# Adaptive-policy shakeout under the race detector: the heterogeneous
# mix under every static policy plus the adaptive engine, clean and
# under the migrate-flaky fault plan, every cell run twice and
# compared DeepEqual, with the invariant auditor (check 7 included)
# after every phase. Result.Check() enforces the acceptance criteria:
# adaptive beats each static policy on aggregate throughput and cuts
# degraded allocations vs static MEM (see EXPERIMENTS.md "adaptive").
adaptive-smoke:
	$(GO) run -race ./cmd/tintbench -exp adaptive

fuzz:
	$(GO) test -fuzz=FuzzMmap -fuzztime=30s ./internal/kernel
	$(GO) test -fuzz=FuzzKernelInterleaving -fuzztime=30s ./internal/kernel
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzFaultPlan -fuzztime=30s ./internal/bench
	$(GO) test -fuzz=FuzzSuiteRegistry -fuzztime=30s ./internal/suite

# vet plus the repo's own determinism/correctness/concurrency
# analyzers (cmd/tintvet); see CONTRIBUTING.md for the rules they
# enforce. Exit codes: 0 clean, 1 findings, 2 load error.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/tintvet ./...

# Analyzer self-tests: every analyzer's positive fixtures must be
# detected and its negative fixtures must stay silent (the atest
# `// want` harness under each analyzer's testdata).
vet-fixtures:
	$(GO) test ./internal/analysis/...

clean:
	$(GO) clean ./...
