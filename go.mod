module github.com/tintmalloc/tintmalloc

go 1.23
